"""Per-pair measurement containers.

A *trace timeline* is the paper's unit of analysis (Section 4.1): "the set
of all traceroutes from one server to another".  :class:`TraceTimeline`
stores one timeline compactly -- per-sample RTT, outcome class and observed
AS path id over a shared time grid -- plus the ground-truth candidate index
per sample, which the simulator knows and real measurements do not (tests
and ablations use it; the analysis pipeline never does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.measurement.traceroute import TraceOutcome
from repro.net.asn import ASN
from repro.net.ip import IPVersion

__all__ = ["TraceTimeline", "PingTimeline"]

_USABLE_OUTCOMES = (
    int(TraceOutcome.COMPLETE),
    int(TraceOutcome.MISSING_AS),
    int(TraceOutcome.MISSING_IP),
)


@dataclass
class TraceTimeline:
    """All traceroutes from one server to another over one protocol.

    Attributes:
        src_server_id / dst_server_id: Endpoints.
        version: IP version of the probes.
        times_hours: Shared measurement grid.
        rtt_ms: End-to-end RTT per sample (float32; NaN when the destination
            was not reached).
        outcome: :class:`~repro.measurement.traceroute.TraceOutcome` per
            sample (uint8).
        path_id: Index into :attr:`paths` of the observed AS path per sample
            (int32; ``-1`` for incomplete samples).
        paths: Distinct observed AS paths for this timeline.
        true_candidate: Ground-truth candidate-route index per sample
            (int16; ``-1`` when the destination was unreachable).  Simulator
            metadata -- not visible to the analysis pipeline.
    """

    src_server_id: int
    dst_server_id: int
    version: IPVersion
    times_hours: np.ndarray
    rtt_ms: np.ndarray
    outcome: np.ndarray
    path_id: np.ndarray
    paths: List[Tuple[ASN, ...]] = field(default_factory=list)
    true_candidate: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int16))

    def __post_init__(self) -> None:
        count = self.times_hours.size
        for name in ("rtt_ms", "outcome", "path_id"):
            if getattr(self, name).size != count:
                raise ValueError(f"{name} length does not match the time grid")

    def __len__(self) -> int:
        return int(self.times_hours.size)

    @property
    def pair(self) -> Tuple[int, int]:
        """The (src, dst) server-id pair."""
        return (self.src_server_id, self.dst_server_id)

    def usable_mask(self) -> np.ndarray:
        """Samples usable for AS-path analysis: reached, no AS loop."""
        return np.isin(self.outcome, _USABLE_OUTCOMES)

    def complete_mask(self) -> np.ndarray:
        """Samples that reached the destination (paper's "complete")."""
        return self.outcome != int(TraceOutcome.INCOMPLETE)

    def observed_paths(self) -> List[Tuple[ASN, ...]]:
        """Distinct AS paths among usable samples, in first-seen order."""
        usable_ids = np.unique(self.path_id[self.usable_mask()])
        return [self.paths[int(i)] for i in usable_ids if i >= 0]

    def usable_path_ids(self) -> np.ndarray:
        """Path ids of usable samples, in time order."""
        return self.path_id[self.usable_mask()]

    def usable_rtts_by_path(self) -> Dict[int, np.ndarray]:
        """Usable-sample RTTs grouped by path id (the AS-path buckets)."""
        mask = self.usable_mask()
        ids = self.path_id[mask]
        rtts = self.rtt_ms[mask]
        result: Dict[int, np.ndarray] = {}
        for path_id in np.unique(ids):
            if path_id < 0:
                continue
            result[int(path_id)] = rtts[ids == path_id]
        return result


@dataclass
class PingTimeline:
    """All pings from one server to another over one protocol.

    RTTs are float32 with NaN for lost probes.
    """

    src_server_id: int
    dst_server_id: int
    version: IPVersion
    times_hours: np.ndarray
    rtt_ms: np.ndarray

    def __post_init__(self) -> None:
        if self.rtt_ms.size != self.times_hours.size:
            raise ValueError("rtt_ms length does not match the time grid")

    def __len__(self) -> int:
        return int(self.times_hours.size)

    @property
    def pair(self) -> Tuple[int, int]:
        """The (src, dst) server-id pair."""
        return (self.src_server_id, self.dst_server_id)

    def valid_count(self) -> int:
        """Number of answered probes."""
        return int(np.sum(~np.isnan(self.rtt_ms)))

    def percentile_spread(self, low: float = 5.0, high: float = 95.0) -> float:
        """Difference between the high and low RTT percentiles (Section 5.1)."""
        valid = self.rtt_ms[~np.isnan(self.rtt_ms)]
        if valid.size == 0:
            return float("nan")
        return float(np.percentile(valid, high) - np.percentile(valid, low))
