"""Measurement records (re-exported from :mod:`repro.measurement.records`).

The record types live in the measurement package (the engines produce
them); they are re-exported here because users browsing the dataset layer
expect to find them alongside the timeline containers.
"""

from repro.measurement.records import HopObservation, PingRecord, TracerouteRecord

__all__ = ["HopObservation", "TracerouteRecord", "PingRecord"]
