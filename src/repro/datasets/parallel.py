"""Fork-based parallel mapping for dataset generation.

The generation pipeline's dominant loops are embarrassingly parallel:
every per-pair timeline draws from its own named RNG stream
(``platform.rng("longterm", src, dst, ...)``), so the work can be sharded
across worker processes with **bit-identical** results -- parallel order
never influences any random draw.

:func:`fork_map` runs a callable over items with a ``fork``
multiprocessing pool.  The callable and any state it closes over (the
platform, pair lists, campaign grids) reach the workers through the
fork's copy-on-write address space -- nothing is pickled on the way in,
only the per-item results on the way out.  Path interning stays
merge-safe because every timeline interns its paths locally; merged
results carry their own path tables.

Serial fallbacks: ``jobs <= 1``, a single item, or platforms without the
``fork`` start method (Windows) all run a plain loop in-process, so
callers never need to special-case.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["fork_map", "resolve_jobs"]

_T = TypeVar("_T")
_R = TypeVar("_R")

# The callable currently being mapped.  Workers inherit this slot at fork
# time, so closures over unpicklable state (a whole platform) work; a
# stack (not a single slot) keeps the helper re-entrant.
_ACTIVE: List[Callable] = []


def _invoke(item):
    return _ACTIVE[-1](item)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request; ``None`` or ``0`` means all cores."""
    if jobs is None or jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return int(jobs)


def fork_map(
    function: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: Optional[int] = 1,
    chunks_per_job: int = 4,
) -> List[_R]:
    """``[function(item) for item in items]``, sharded across a fork pool.

    Args:
        function: Applied to each item; may close over arbitrary state
            (shared with workers via fork, never pickled).  Results must
            be picklable.
        items: The work list; output order matches input order.
        jobs: Worker processes (``<= 1`` runs serially in-process;
            ``None``/``0`` uses all cores).
        chunks_per_job: Shard granularity -- each worker receives about
            this many chunks, balancing scheduling overhead against skew.

    Returns:
        The mapped results, in input order, identical to the serial run.
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    if jobs <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        return [function(item) for item in items]
    context = multiprocessing.get_context("fork")
    chunksize = max(1, len(items) // (jobs * max(1, chunks_per_job)))
    _ACTIVE.append(function)
    try:
        with context.Pool(processes=jobs) as pool:
            return pool.map(_invoke, items, chunksize=chunksize)
    finally:
        _ACTIVE.pop()
