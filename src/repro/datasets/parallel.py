"""Fork-based parallel mapping for dataset generation.

The generation pipeline's dominant loops are embarrassingly parallel:
every per-pair timeline draws from its own named RNG stream
(``platform.rng("longterm", src, dst, ...)``), so the work can be sharded
across worker processes with **bit-identical** results -- parallel order
never influences any random draw.

:func:`fork_map` runs a callable over items with a ``fork``
multiprocessing pool.  The callable and any state it closes over (the
platform, pair lists, campaign grids) reach the workers through the
fork's copy-on-write address space -- nothing is pickled on the way in,
only the per-item results on the way out.  Path interning stays
merge-safe because every timeline interns its paths locally; merged
results carry their own path tables.

Serial fallbacks: an empty item list returns immediately, and
``jobs <= 1``, a single item, or platforms without the ``fork`` start
method (Windows) all run a plain loop in-process, so callers never need
to special-case.

Telemetry: every call opens a ``fork_map:<label>`` span (items, jobs,
chunk size, total worker seconds in its attributes), counts items and
chunk sizes in the metrics registry, and -- because worker processes hold
only a forked *copy* of the registry -- ships each item's counter and
histogram increments back to the parent as a snapshot delta, merged via
:meth:`repro.obs.metrics.MetricsRegistry.merge`.  Long maps emit
rate-limited progress log lines.  None of this changes any result.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.obs import metrics as obs_metrics
from repro.obs.log import Progress, get_logger
from repro.obs.trace import get_tracer

__all__ = ["fork_map", "resolve_jobs"]

_T = TypeVar("_T")
_R = TypeVar("_R")

_LOG = get_logger("repro.datasets.parallel")

# The callable currently being mapped.  Workers inherit this slot at fork
# time, so closures over unpicklable state (a whole platform) work; a
# stack (not a single slot) keeps the helper re-entrant.
_ACTIVE: List[Callable] = []


def _invoke(item):
    """Worker-side wrapper: run one item and capture its telemetry.

    Returns ``(result, metrics_delta, elapsed_seconds)``.  The delta is
    computed against a registry snapshot taken just before the call, so
    counters the mapped function increments inside the worker reach the
    parent exactly once, however items are chunked.
    """
    registry = obs_metrics.get_registry()
    baseline = registry.snapshot()
    started = time.perf_counter()
    result = _ACTIVE[-1](item)
    elapsed = time.perf_counter() - started
    return result, registry.delta_since(baseline), elapsed


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request; ``None`` or ``0`` means all cores."""
    if jobs is None or jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return int(jobs)


def fork_map(
    function: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: Optional[int] = 1,
    chunks_per_job: int = 4,
    label: Optional[str] = None,
) -> List[_R]:
    """``[function(item) for item in items]``, sharded across a fork pool.

    Args:
        function: Applied to each item; may close over arbitrary state
            (shared with workers via fork, never pickled).  Results must
            be picklable.
        items: The work list; output order matches input order.
        jobs: Worker processes (``<= 1`` runs serially in-process;
            ``None``/``0`` uses all cores).
        chunks_per_job: Shard granularity -- each worker receives about
            this many chunks, balancing scheduling overhead against skew.
        label: Span/log name for this map (defaults to the function name).

    Returns:
        The mapped results, in input order, identical to the serial run.
    """
    items = list(items)
    if not items:
        # Explicit empty path: never resolve cores or consult the pool.
        return []
    jobs = min(resolve_jobs(jobs), len(items))
    name = label or getattr(function, "__name__", "map")
    registry = obs_metrics.get_registry()
    registry.counter("fork_map.calls").inc()
    registry.counter("fork_map.items").inc(len(items))
    serial = jobs <= 1 or "fork" not in multiprocessing.get_all_start_methods()

    with get_tracer().span(
        f"fork_map:{name}", items=len(items), jobs=1 if serial else jobs
    ) as span:
        progress = Progress(
            _LOG, "fork_map.progress", total=len(items), label=name
        )
        if serial:
            results = []
            for item in items:
                results.append(function(item))
                progress.update()
            progress.finish()
            return results

        chunksize = max(1, len(items) // (jobs * max(1, chunks_per_job)))
        registry.gauge("fork_map.jobs").set(jobs)
        registry.histogram("fork_map.chunk_size").observe(chunksize)
        span.attrs["chunksize"] = chunksize
        item_seconds = registry.histogram("fork_map.item_seconds")
        worker_seconds = 0.0

        context = multiprocessing.get_context("fork")
        results = []
        _ACTIVE.append(function)
        try:
            with context.Pool(processes=jobs) as pool:
                for result, delta, elapsed in pool.imap(
                    _invoke, items, chunksize=chunksize
                ):
                    results.append(result)
                    registry.merge(delta)
                    item_seconds.observe(elapsed)
                    worker_seconds += elapsed
                    progress.update()
        finally:
            _ACTIVE.pop()
        progress.finish()
        span.attrs["worker_seconds"] = round(worker_seconds, 6)
        return results
