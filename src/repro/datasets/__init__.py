"""Record and dataset layer.

- :mod:`repro.datasets.records` -- single-measurement records (traceroute
  with per-hop observations, ping).
- :mod:`repro.datasets.timeline` -- the per-pair containers the analyses
  consume: :class:`TraceTimeline` (a "trace timeline" in the paper's
  vocabulary, Section 4.1) and :class:`PingTimeline`.
- :mod:`repro.datasets.longterm` -- the 16-month full-mesh traceroute
  dataset builder (Section 2.1), scaled.
- :mod:`repro.datasets.shortterm` -- the short-term ping and traceroute
  campaign builders (Section 2.2).
- :mod:`repro.datasets.io` -- persistence (JSONL + NPZ).
- :mod:`repro.datasets.parallel` -- the fork-based worker pool the
  builders use for ``jobs > 1``.
"""

from repro.datasets.colocated import build_colocated_dataset, colocated_pairs
from repro.datasets.longterm import LongTermConfig, LongTermDataset, build_longterm_dataset
from repro.datasets.records import HopObservation, PingRecord, TracerouteRecord
from repro.datasets.shortterm import (
    ShortTermConfig,
    ShortTermPingDataset,
    ShortTermTraceDataset,
    build_shortterm_ping_dataset,
    build_shortterm_trace_dataset,
)
from repro.datasets.parallel import fork_map, resolve_jobs
from repro.datasets.timeline import PingTimeline, TraceTimeline

__all__ = [
    "fork_map",
    "resolve_jobs",
    "HopObservation",
    "TracerouteRecord",
    "PingRecord",
    "TraceTimeline",
    "PingTimeline",
    "LongTermConfig",
    "LongTermDataset",
    "build_longterm_dataset",
    "ShortTermConfig",
    "ShortTermPingDataset",
    "ShortTermTraceDataset",
    "build_shortterm_ping_dataset",
    "build_shortterm_trace_dataset",
    "colocated_pairs",
    "build_colocated_dataset",
]
