"""A dict that counts its own mutations, for cheap cache invalidation.

The dataset containers cache their sorted key order (``_ordered_keys``)
because the experiment harness re-reads it 16+ times per run.  Keying
that cache on ``len(dict)`` is subtly wrong: replacing an existing key's
value (same size) or a delete-then-insert of a different key (same size)
both slip past a length check.  :class:`VersionedDict` bumps a
monotonically increasing :attr:`version` on every mutating operation, so
``cache_key != dict.version`` is a sound staleness test.
"""

from __future__ import annotations

from typing import Dict, Tuple, TypeVar

__all__ = ["VersionedDict", "dict_version"]

_K = TypeVar("_K")
_V = TypeVar("_V")


class VersionedDict(Dict[_K, _V]):
    """A ``dict`` whose :attr:`version` increments on every mutation.

    Reads are plain ``dict`` reads (no overhead); every mutating method
    bumps the counter, including no-op-looking calls like ``update()``
    with an existing key, because distinguishing "same value" from
    "replaced value" costs more than an occasional spurious re-sort.
    """

    __slots__ = ("version",)

    def __init__(self, *args: object, **kwargs: object) -> None:
        self.version = 0
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]

    def __reduce__(self):
        # The default dict-subclass protocol replays items through
        # __setitem__ on a __new__-created instance -- before the
        # version slot exists, so every unpickle would blow up (and an
        # artifact-cache load would read as corruption).  Route the
        # items through __init__ instead and carry the counter as state.
        return (self.__class__, (dict(self),), self.version)

    def __setstate__(self, state: int) -> None:
        self.version = int(state)

    def __setitem__(self, key: _K, value: _V) -> None:
        self.version += 1
        super().__setitem__(key, value)

    def __delitem__(self, key: _K) -> None:
        self.version += 1
        super().__delitem__(key)

    def update(self, *args: object, **kwargs: object) -> None:  # type: ignore[override]
        self.version += 1
        super().update(*args, **kwargs)  # type: ignore[arg-type]

    def pop(self, *args: object) -> _V:  # type: ignore[override]
        self.version += 1
        return super().pop(*args)  # type: ignore[arg-type]

    def popitem(self) -> Tuple[_K, _V]:  # type: ignore[override]
        self.version += 1
        return super().popitem()

    def clear(self) -> None:
        self.version += 1
        super().clear()

    def setdefault(self, key: _K, default: _V = None) -> _V:  # type: ignore[override, assignment]
        self.version += 1
        return super().setdefault(key, default)


def dict_version(mapping: Dict[object, object]) -> int:
    """The mutation counter of ``mapping``.

    Falls back to ``-1 - len(mapping)`` for plain dicts (callers that
    constructed a dataset with a literal dict), so a cache keyed on this
    value still invalidates on growth -- the legacy, weaker behaviour.
    """
    version = getattr(mapping, "version", None)
    if version is None:
        return -1 - len(mapping)
    return int(version)
