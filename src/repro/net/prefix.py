"""CIDR prefixes and a binary radix trie with longest-prefix matching.

The trie is the library's stand-in for a BGP routing information base: the
paper maps each traceroute hop IP "to an AS number corresponding to the
origin AS of the longest matching prefix observed in BGP" (Section 2.1).
:class:`PrefixTrie` provides exactly that lookup, with arbitrary payloads so
the same structure also serves prefix-to-owner and prefix-to-link tables in
the topology substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterator, Optional, Tuple, TypeVar

from repro.net.ip import IPAddress, IPVersion

__all__ = ["Prefix", "PrefixTrie"]

T = TypeVar("T")


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR prefix such as ``10.1.0.0/16`` or ``2001:db8::/32``.

    Attributes:
        version: IP version of the prefix.
        network: Numeric network address.  Host bits must be zero.
        length: Prefix length in bits.
    """

    version: IPVersion
    network: int
    length: int

    def __post_init__(self) -> None:
        if not isinstance(self.version, IPVersion):
            object.__setattr__(self, "version", IPVersion(self.version))
        if not 0 <= self.length <= self.version.bits:
            raise ValueError(f"prefix length {self.length} invalid for IPv{int(self.version)}")
        host_bits = self.version.bits - self.length
        if self.network & ((1 << host_bits) - 1 if host_bits else 0):
            raise ValueError("prefix network address has host bits set")
        if not 0 <= self.network <= self.version.max_value:
            raise ValueError("prefix network address out of range")

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse CIDR notation, e.g. ``"192.0.2.0/24"`` or ``"2001:db8::/32"``."""
        address_text, _, length_text = text.partition("/")
        if not length_text:
            raise ValueError(f"missing prefix length in {text!r}")
        address = IPAddress.parse(address_text)
        return cls(address.version, address.value, int(length_text))

    @classmethod
    def from_address(cls, address: IPAddress, length: int) -> "Prefix":
        """Build the prefix of ``length`` bits that contains ``address``."""
        host_bits = address.version.bits - length
        network = (address.value >> host_bits) << host_bits if host_bits else address.value
        return cls(address.version, network, length)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (self.version.bits - self.length)

    def contains(self, address: IPAddress) -> bool:
        """Whether ``address`` falls inside this prefix (same version required)."""
        if address.version is not self.version:
            return False
        host_bits = self.version.bits - self.length
        return (address.value >> host_bits) == (self.network >> host_bits)

    def contains_prefix(self, other: "Prefix") -> bool:
        """Whether ``other`` is equal to or more specific than this prefix."""
        if other.version is not self.version or other.length < self.length:
            return False
        shift = self.version.bits - self.length
        return (other.network >> shift) == (self.network >> shift)

    def address(self, offset: int) -> IPAddress:
        """The ``offset``-th address inside the prefix.

        Raises:
            ValueError: If ``offset`` is outside the prefix.
        """
        if not 0 <= offset < self.num_addresses:
            raise ValueError(f"offset {offset} outside {self}")
        return IPAddress(self.version, self.network + offset)

    def subprefix(self, length: int, index: int) -> "Prefix":
        """The ``index``-th sub-prefix of the given (longer) ``length``.

        Used by the address allocator to carve per-AS blocks out of a parent
        pool and per-link subnets out of an AS block.
        """
        if length < self.length or length > self.version.bits:
            raise ValueError(f"cannot carve /{length} out of {self}")
        count = 1 << (length - self.length)
        if not 0 <= index < count:
            raise ValueError(f"sub-prefix index {index} out of range for /{length} in {self}")
        network = self.network + index * (1 << (self.version.bits - length))
        return Prefix(self.version, network, length)

    def __str__(self) -> str:
        return f"{IPAddress(self.version, self.network)}/{self.length}"


class _Node(Generic[T]):
    """One binary trie node; ``payload`` is set only for inserted prefixes."""

    __slots__ = ("children", "payload", "has_payload")

    def __init__(self) -> None:
        self.children: list[Optional[_Node[T]]] = [None, None]
        self.payload: Optional[T] = None
        self.has_payload = False


class PrefixTrie(Generic[T]):
    """Binary radix trie keyed by :class:`Prefix`, per IP version.

    Supports exact insert/lookup/delete and longest-prefix match, the core
    primitive for IP-to-ASN mapping.  A single trie instance handles one IP
    version; mixing versions raises :class:`ValueError`.
    """

    def __init__(self, version: IPVersion) -> None:
        self.version = IPVersion(version)
        self._root: _Node[T] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _check_version(self, version: IPVersion) -> None:
        if version is not self.version:
            raise ValueError(
                f"IPv{int(version)} key used with IPv{int(self.version)} trie"
            )

    def _bits(self, network: int) -> Iterator[int]:
        width = self.version.bits
        for position in range(width - 1, -1, -1):
            yield (network >> position) & 1

    def insert(self, prefix: Prefix, payload: T) -> None:
        """Insert (or replace) the payload stored at ``prefix``."""
        self._check_version(prefix.version)
        node = self._root
        for bit, _ in zip(self._bits(prefix.network), range(prefix.length)):
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_payload:
            self._size += 1
        node.payload = payload
        node.has_payload = True

    def lookup_exact(self, prefix: Prefix) -> Optional[T]:
        """Payload stored at exactly ``prefix``, or ``None``."""
        self._check_version(prefix.version)
        node = self._root
        for bit, _ in zip(self._bits(prefix.network), range(prefix.length)):
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.payload if node.has_payload else None

    def remove(self, prefix: Prefix) -> bool:
        """Remove ``prefix`` if present; returns whether it was removed.

        Nodes left empty are pruned so repeated insert/remove cycles do not
        leak memory.
        """
        self._check_version(prefix.version)
        path: list[Tuple[_Node[T], int]] = []
        node = self._root
        for bit, _ in zip(self._bits(prefix.network), range(prefix.length)):
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if not node.has_payload:
            return False
        node.has_payload = False
        node.payload = None
        self._size -= 1
        # Prune childless, payload-free nodes bottom-up.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            assert child is not None
            if child.has_payload or child.children[0] or child.children[1]:
                break
            parent.children[bit] = None
        return True

    def longest_match(self, address: IPAddress) -> Optional[Tuple[Prefix, T]]:
        """Longest-prefix match for ``address``.

        Returns:
            The matching ``(prefix, payload)`` with the greatest prefix
            length, or ``None`` when no inserted prefix covers the address.
        """
        self._check_version(address.version)
        node = self._root
        best: Optional[Tuple[int, T]] = None
        depth = 0
        if node.has_payload:
            best = (0, node.payload)  # type: ignore[arg-type]
        for bit in self._bits(address.value):
            child = node.children[bit]
            if child is None:
                break
            depth += 1
            node = child
            if node.has_payload:
                best = (depth, node.payload)  # type: ignore[arg-type]
        if best is None:
            return None
        length, payload = best
        return Prefix.from_address(address, length), payload

    def lookup(self, address: IPAddress) -> Optional[T]:
        """Payload of the longest matching prefix, or ``None``."""
        match = self.longest_match(address)
        return match[1] if match else None

    def items(self) -> Iterator[Tuple[Prefix, T]]:
        """Iterate over all inserted ``(prefix, payload)`` pairs.

        Order is lexicographic by bit string (i.e. by network address, with
        shorter prefixes before their more-specifics).
        """
        stack: list[Tuple[_Node[T], int, int]] = [(self._root, 0, 0)]
        width = self.version.bits
        while stack:
            node, bits, depth = stack.pop()
            if node.has_payload:
                network = bits << (width - depth) if depth < width else bits
                yield Prefix(self.version, network, depth), node.payload  # type: ignore[misc]
            # Push right child first so left (bit 0) is visited first.
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append((child, (bits << 1) | bit, depth + 1))
