"""Geography: coordinates, great-circle distance, and latency lower bounds.

Two latency floors matter in the paper:

- ``cRTT`` (Section 6): the round-trip time of light *in free space* over the
  great-circle distance between two servers.  The paper's RTT-inflation
  metric (Figure 10b) is ``median RTT / cRTT``.
- The fiber propagation delay used by the RTT model: light in fiber travels
  at roughly 2/3 of c, and physical routes are longer than the great circle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "SPEED_OF_LIGHT_KM_PER_MS",
    "FIBER_REFRACTION_FACTOR",
    "EARTH_RADIUS_KM",
    "GeoLocation",
    "great_circle_km",
    "crtt_ms",
    "fiber_rtt_ms",
]

SPEED_OF_LIGHT_KM_PER_MS = 299.792458
"""Speed of light in vacuum, in kilometres per millisecond."""

FIBER_REFRACTION_FACTOR = 2.0 / 3.0
"""Approximate ratio of the speed of light in fiber to c (refractive index ~1.5)."""

EARTH_RADIUS_KM = 6371.0
"""Mean Earth radius used for great-circle distances."""


@dataclass(frozen=True)
class GeoLocation:
    """A named point on Earth.

    Attributes:
        city: City name (informational).
        country: ISO-like two-letter country code, e.g. ``"US"``.
        continent: Two-letter continent code, e.g. ``"NA"``, ``"EU"``, ``"AS"``.
        latitude: Degrees north, in ``[-90, 90]``.
        longitude: Degrees east, in ``[-180, 180]``.
    """

    city: str
    country: str
    continent: str
    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude {self.latitude} out of range for {self.city}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude {self.longitude} out of range for {self.city}")

    def distance_km(self, other: "GeoLocation") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return great_circle_km(self.latitude, self.longitude, other.latitude, other.longitude)

    def __str__(self) -> str:
        return f"{self.city}, {self.country}"


@lru_cache(maxsize=None)
def great_circle_km(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle (haversine) distance between two points, in kilometres.

    Memoized: the coordinate space is the finite set of city locations,
    and path realization recomputes the same link distances tens of
    thousands of times per build.  A pure function of its four floats,
    so caching cannot change any result.
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def crtt_ms(a: GeoLocation, b: GeoLocation) -> float:
    """Speed-of-light (free space) round-trip time between two locations.

    This is the paper's ``cRTT``: the time a packet travelling at c over the
    great-circle distance would need for the round trip.  The value is zero
    for co-located endpoints, so callers computing inflation ratios must
    guard against division by zero (see :mod:`repro.core.inflation`).
    """
    return 2.0 * a.distance_km(b) / SPEED_OF_LIGHT_KM_PER_MS


def fiber_rtt_ms(distance_km: float, path_stretch: float = 1.0) -> float:
    """Round-trip propagation delay over ``distance_km`` of fiber.

    Args:
        distance_km: One-way great-circle distance.
        path_stretch: Multiplier for the physical route being longer than the
            great circle (cable routing, metro detours).  ``1.0`` means the
            fiber follows the great circle exactly.
    """
    if distance_km < 0.0:
        raise ValueError("distance must be non-negative")
    if path_stretch < 1.0:
        raise ValueError("path stretch cannot shorten the great circle")
    speed = SPEED_OF_LIGHT_KM_PER_MS * FIBER_REFRACTION_FACTOR
    return 2.0 * distance_km * path_stretch / speed
