"""Network-layer substrate: addresses, prefixes, AS numbers, geography.

This subpackage provides the low-level value types that the rest of the
library is built on:

- :mod:`repro.net.ip` -- IPv4/IPv6 address values and parsing/formatting.
- :mod:`repro.net.prefix` -- CIDR prefixes and a binary radix trie with
  longest-prefix matching, used as the stand-in for a BGP RIB when mapping
  traceroute hop addresses to origin ASes.
- :mod:`repro.net.asn` -- AS numbers and inter-AS business relationships.
- :mod:`repro.net.geo` -- geographic coordinates, great-circle distance and
  the speed-of-light lower bound on round-trip time (``cRTT``) used by the
  paper's RTT-inflation analysis (Figure 10b).
"""

from repro.net.asn import ASN, ASRelationship, RelationshipTable
from repro.net.geo import (
    FIBER_REFRACTION_FACTOR,
    SPEED_OF_LIGHT_KM_PER_MS,
    GeoLocation,
    crtt_ms,
    fiber_rtt_ms,
    great_circle_km,
)
from repro.net.ip import IPAddress, IPVersion
from repro.net.prefix import Prefix, PrefixTrie

__all__ = [
    "ASN",
    "ASRelationship",
    "RelationshipTable",
    "GeoLocation",
    "IPAddress",
    "IPVersion",
    "Prefix",
    "PrefixTrie",
    "SPEED_OF_LIGHT_KM_PER_MS",
    "FIBER_REFRACTION_FACTOR",
    "great_circle_km",
    "crtt_ms",
    "fiber_rtt_ms",
]
