"""IP address value types.

Addresses are stored as plain integers plus a version tag.  This keeps the
simulator fast (address arithmetic is integer arithmetic) while still giving
readable dotted-quad / RFC 5952 text forms wherever addresses surface in
records, reports and error messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["IPVersion", "IPAddress", "MAX_IPV4", "MAX_IPV6"]

MAX_IPV4 = (1 << 32) - 1
MAX_IPV6 = (1 << 128) - 1


class IPVersion(enum.IntEnum):
    """IP protocol version.

    The integer values (4 and 6) match the conventional protocol numbers so
    the enum can be used directly in messages such as ``f"IPv{version}"``.
    """

    V4 = 4
    V6 = 6

    @property
    def bits(self) -> int:
        """Address width in bits (32 for IPv4, 128 for IPv6)."""
        return 32 if self is IPVersion.V4 else 128

    @property
    def max_value(self) -> int:
        """Largest representable address value for this version."""
        return MAX_IPV4 if self is IPVersion.V4 else MAX_IPV6


@dataclass(frozen=True, order=True)
class IPAddress:
    """An IPv4 or IPv6 address.

    Instances are immutable, hashable and ordered (first by version, then by
    numeric value), so they can be used as dictionary keys throughout the
    measurement records and analysis pipeline.

    Attributes:
        version: The IP protocol version of the address.
        value: The numeric address value, ``0 <= value <= version.max_value``.
    """

    version: IPVersion
    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.version, IPVersion):
            object.__setattr__(self, "version", IPVersion(self.version))
        if not 0 <= self.value <= self.version.max_value:
            raise ValueError(
                f"address value {self.value:#x} out of range for IPv{int(self.version)}"
            )

    @classmethod
    def v4(cls, value: int) -> "IPAddress":
        """Build an IPv4 address from its 32-bit integer value."""
        return cls(IPVersion.V4, value)

    @classmethod
    def v6(cls, value: int) -> "IPAddress":
        """Build an IPv6 address from its 128-bit integer value."""
        return cls(IPVersion.V6, value)

    @classmethod
    def parse(cls, text: str) -> "IPAddress":
        """Parse a textual IPv4 (dotted quad) or IPv6 (RFC 4291) address.

        Raises:
            ValueError: If ``text`` is not a valid address of either family.
        """
        if ":" in text:
            return cls(IPVersion.V6, _parse_v6(text))
        return cls(IPVersion.V4, _parse_v4(text))

    def __add__(self, offset: int) -> "IPAddress":
        return IPAddress(self.version, self.value + offset)

    def __str__(self) -> str:
        if self.version is IPVersion.V4:
            return _format_v4(self.value)
        return _format_v6(self.value)

    def __repr__(self) -> str:
        return f"IPAddress({self})"


def _parse_v4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"invalid IPv4 octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"IPv4 octet {octet} out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _format_v4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _parse_v6(text: str) -> int:
    if text.count("::") > 1:
        raise ValueError(f"invalid IPv6 address (multiple '::'): {text!r}")
    if "::" in text:
        head_text, tail_text = text.split("::")
        head = head_text.split(":") if head_text else []
        tail = tail_text.split(":") if tail_text else []
        missing = 8 - len(head) - len(tail)
        if missing < 1:
            raise ValueError(f"invalid IPv6 address: {text!r}")
        groups = head + ["0"] * missing + tail
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise ValueError(f"invalid IPv6 address (expected 8 groups): {text!r}")
    value = 0
    for group in groups:
        if not group or len(group) > 4:
            raise ValueError(f"invalid IPv6 group {group!r} in {text!r}")
        try:
            word = int(group, 16)
        except ValueError as exc:
            raise ValueError(f"invalid IPv6 group {group!r} in {text!r}") from exc
        value = (value << 16) | word
    return value


def _format_v6(value: int) -> str:
    """Format per RFC 5952: lowercase hex, longest zero run compressed."""
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -16, -16)]
    # Find the longest run of zero groups (length >= 2) to compress.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = index, 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(f"{group:x}" for group in groups)
    head = ":".join(f"{group:x}" for group in groups[:best_start])
    tail = ":".join(f"{group:x}" for group in groups[best_start + best_len :])
    return f"{head}::{tail}"
