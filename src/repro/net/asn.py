"""AS numbers and inter-AS business relationships.

The paper's ownership heuristics (Section 5.3) and link-type classification
depend on AS relationship data "from the same BGP data" (CAIDA inferences in
the paper).  In this reproduction the topology generator records ground-truth
relationships in a :class:`RelationshipTable`; the analysis pipeline consumes
the table through the same narrow interface a CAIDA-derived table would
provide, so an inferred (noisy) table can be swapped in for sensitivity
studies.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

__all__ = ["ASN", "ASRelationship", "RelationshipTable"]

# An autonomous system number.  A plain int keeps hot loops cheap; the alias
# documents intent in signatures.
ASN = int


class ASRelationship(enum.Enum):
    """Business relationship of an ordered AS pair ``(a, b)``.

    ``CUSTOMER`` means *b is a customer of a* (the edge a->b goes "down"),
    ``PROVIDER`` means *b is a provider of a* (the edge goes "up"), and
    ``PEER`` is a settlement-free peering.  ``SIBLING`` covers
    same-organization ASes that exchange all routes.
    """

    CUSTOMER = "c"
    PROVIDER = "p"
    PEER = "peer"
    SIBLING = "sibling"

    def invert(self) -> "ASRelationship":
        """Relationship seen from the other endpoint of the edge."""
        if self is ASRelationship.CUSTOMER:
            return ASRelationship.PROVIDER
        if self is ASRelationship.PROVIDER:
            return ASRelationship.CUSTOMER
        return self


class RelationshipTable:
    """Symmetric store of AS-pair relationships.

    Internally keyed on ordered pairs; :meth:`get` accepts either order and
    inverts the relationship as needed, mirroring how AS-relationship files
    (e.g. CAIDA serial-1) are consumed.
    """

    def __init__(self) -> None:
        self._relations: Dict[Tuple[ASN, ASN], ASRelationship] = {}
        self._neighbors: Dict[ASN, Set[ASN]] = {}

    def __len__(self) -> int:
        return len(self._relations)

    def add(self, a: ASN, b: ASN, relationship: ASRelationship) -> None:
        """Record that, seen from ``a``, neighbor ``b`` is ``relationship``.

        The symmetric entry is stored implicitly; re-adding an existing pair
        (in either order) with a conflicting relationship raises
        :class:`ValueError` so generator bugs surface early.
        """
        if a == b:
            raise ValueError(f"self-relationship for AS{a}")
        existing = self.get(a, b)
        if existing is not None and existing is not relationship:
            raise ValueError(
                f"conflicting relationship for AS{a}-AS{b}: "
                f"{existing.name} vs {relationship.name}"
            )
        key = (a, b) if a < b else (b, a)
        self._relations[key] = relationship if a < b else relationship.invert()
        self._neighbors.setdefault(a, set()).add(b)
        self._neighbors.setdefault(b, set()).add(a)

    def get(self, a: ASN, b: ASN) -> Optional[ASRelationship]:
        """Relationship of ``b`` as seen from ``a``, or ``None`` if unknown."""
        key = (a, b) if a < b else (b, a)
        relationship = self._relations.get(key)
        if relationship is None:
            return None
        return relationship if a < b else relationship.invert()

    def neighbors(self, asn: ASN) -> Set[ASN]:
        """All ASes with a recorded relationship to ``asn``."""
        return self._neighbors.get(asn, set())

    def customers(self, asn: ASN) -> Iterator[ASN]:
        """Neighbors that are customers of ``asn``."""
        for neighbor in self._neighbors.get(asn, set()):
            if self.get(asn, neighbor) is ASRelationship.CUSTOMER:
                yield neighbor

    def providers(self, asn: ASN) -> Iterator[ASN]:
        """Neighbors that are providers of ``asn``."""
        for neighbor in self._neighbors.get(asn, set()):
            if self.get(asn, neighbor) is ASRelationship.PROVIDER:
                yield neighbor

    def peers(self, asn: ASN) -> Iterator[ASN]:
        """Settlement-free peers of ``asn``."""
        for neighbor in self._neighbors.get(asn, set()):
            if self.get(asn, neighbor) is ASRelationship.PEER:
                yield neighbor

    def is_customer_of(self, customer: ASN, provider: ASN) -> bool:
        """Whether ``customer`` buys transit from ``provider``."""
        return self.get(provider, customer) is ASRelationship.CUSTOMER

    def pairs(self) -> Iterable[Tuple[ASN, ASN, ASRelationship]]:
        """All stored pairs as ``(a, b, relationship-of-b-seen-from-a)``."""
        for (a, b), relationship in self._relations.items():
            yield a, b, relationship

    def copy(self) -> "RelationshipTable":
        """Shallow copy; used to derive perturbed tables for ablations."""
        clone = RelationshipTable()
        clone._relations = dict(self._relations)
        clone._neighbors = {asn: set(neighbors) for asn, neighbors in self._neighbors.items()}
        return clone
