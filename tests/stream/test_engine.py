"""Batch <-> stream equivalence and kill/resume determinism.

The headline contracts of the streaming engine:

- every report it renders is byte-identical to the batch driver's
  (fig6's P-squared approximation is exact at this scale, where most
  per-path buckets stay below the estimator's five-sample threshold);
- a run killed mid-campaign and resumed from its checkpoint produces
  byte-identical reports to an uninterrupted run;
- sharded unit construction changes nothing.
"""

import pytest

from repro.datasets.longterm import LongTermConfig
from repro.datasets.shortterm import ShortTermConfig
from repro.harness import experiments as exp
from repro.stream.engine import (
    STREAM_EXPERIMENTS,
    StreamConfig,
    StreamEngine,
    StreamInterrupted,
)

LONGTERM_CONFIG = LongTermConfig(days=60)
SHORTTERM_CONFIG = ShortTermConfig(ping_days=7.0, trace_days=14.0)


def _render_all(results):
    return "\n\n".join(result.render() for result in results)


@pytest.fixture(scope="module")
def stream_results(platform):
    engine = StreamEngine(
        platform,
        longterm_config=LONGTERM_CONFIG,
        shortterm_config=SHORTTERM_CONFIG,
    )
    return engine.run()


class TestBatchEquivalence:
    def test_serves_all_four_experiments(self, stream_results):
        assert [result.experiment_id for result in stream_results] == list(STREAM_EXPERIMENTS)

    def test_fig3_identical(self, stream_results, longterm):
        assert stream_results[0].render() == exp.experiment_fig3(longterm).render()

    def test_fig6_identical(self, stream_results, longterm):
        assert stream_results[1].render() == exp.experiment_fig6(longterm).render()

    def test_congestion_norm_identical(self, stream_results, ping_dataset):
        assert (
            stream_results[2].render()
            == exp.experiment_congestion_norm(ping_dataset).render()
        )

    def test_localization_identical(self, stream_results, trace_dataset, platform):
        assert (
            stream_results[3].render()
            == exp.experiment_localization(trace_dataset, platform).render()
        )


class TestExperimentSelection:
    def test_rejects_batch_only_experiments(self, platform):
        with pytest.raises(ValueError, match="not served by the stream engine"):
            StreamEngine(platform, experiments=["table1"])

    def test_subset_runs_only_needed_phases(self, platform):
        engine = StreamEngine(
            platform,
            longterm_config=LONGTERM_CONFIG,
            shortterm_config=SHORTTERM_CONFIG,
            experiments=["fig3"],
        )
        results = engine.run()
        assert [result.experiment_id for result in results] == ["fig3"]
        assert set(engine._completed) == {"longterm"}


class TestShardedEquivalence:
    def test_sharded_run_identical(self, platform, stream_results):
        engine = StreamEngine(
            platform,
            longterm_config=LONGTERM_CONFIG,
            shortterm_config=SHORTTERM_CONFIG,
            config=StreamConfig(shards=3, queue_units=2),
        )
        assert _render_all(engine.run()) == _render_all(stream_results)


class TestKillResume:
    def test_resume_is_byte_identical(self, platform, tmp_path, stream_results):
        reference = _render_all(stream_results)
        config = StreamConfig(checkpoint_every=8)

        killed = StreamEngine(
            platform,
            longterm_config=LONGTERM_CONFIG,
            shortterm_config=SHORTTERM_CONFIG,
            config=config,
            checkpoint_dir=tmp_path,
        )
        with pytest.raises(StreamInterrupted) as outcome:
            killed.run(max_units=25)
        assert outcome.value.phase == "longterm"
        assert killed.checkpoint_store.load() is not None

        resumed = StreamEngine(
            platform,
            longterm_config=LONGTERM_CONFIG,
            shortterm_config=SHORTTERM_CONFIG,
            config=config,
            checkpoint_dir=tmp_path,
        )
        assert _render_all(resumed.run(resume=True)) == reference
        # A completed run leaves no resume point behind.
        assert resumed.checkpoint_store.load() is None

    def test_kill_in_later_phase_resumes(self, platform, tmp_path, stream_results):
        reference = _render_all(stream_results)
        config = StreamConfig(checkpoint_every=8)
        longterm_units = 2 * len(platform.server_pairs(dual_stack_only=True))

        killed = StreamEngine(
            platform,
            longterm_config=LONGTERM_CONFIG,
            shortterm_config=SHORTTERM_CONFIG,
            config=config,
            checkpoint_dir=tmp_path,
        )
        with pytest.raises(StreamInterrupted) as outcome:
            killed.run(max_units=longterm_units + 10)
        assert outcome.value.phase == "ping"

        resumed = StreamEngine(
            platform,
            longterm_config=LONGTERM_CONFIG,
            shortterm_config=SHORTTERM_CONFIG,
            config=config,
            checkpoint_dir=tmp_path,
        )
        assert _render_all(resumed.run(resume=True)) == reference

    def test_mismatched_config_ignores_checkpoint(self, platform, tmp_path):
        killed = StreamEngine(
            platform,
            longterm_config=LONGTERM_CONFIG,
            shortterm_config=SHORTTERM_CONFIG,
            config=StreamConfig(checkpoint_every=8),
            checkpoint_dir=tmp_path,
        )
        with pytest.raises(StreamInterrupted):
            killed.run(max_units=25)

        other = StreamEngine(
            platform,
            longterm_config=LONGTERM_CONFIG,
            shortterm_config=SHORTTERM_CONFIG,
            config=StreamConfig(checkpoint_every=9),  # different fingerprint
            checkpoint_dir=tmp_path,
        )
        assert other.fingerprint != killed.fingerprint
        assert other.checkpoint_store.load() is None
