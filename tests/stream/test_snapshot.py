"""Tests for the hardened snapshot framing shared by both stores."""

import os

import pytest

from repro.stream.snapshot import (
    FALLBACK_SUFFIX,
    SNAPSHOT_MAGIC,
    SnapshotCorrupt,
    corrupt_file,
    fallback_path,
    read_snapshot,
    reap_stale_temps,
    temp_path,
    write_snapshot,
)


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "state.ckpt"
        write_snapshot(path, {"cycle": 3, "rows": [1, 2, 3]})
        assert read_snapshot(path) == {"cycle": 3, "rows": [1, 2, 3]}
        assert path.read_bytes().startswith(SNAPSHOT_MAGIC)

    def test_missing_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_snapshot(tmp_path / "absent.ckpt")

    def test_write_leaves_no_staging_file(self, tmp_path):
        path = tmp_path / "state.ckpt"
        write_snapshot(path, {"n": 1})
        assert not temp_path(path).exists()

    def test_rotation_keeps_previous_generation(self, tmp_path):
        path = tmp_path / "state.ckpt"
        write_snapshot(path, {"gen": 1})
        assert not fallback_path(path).exists()
        write_snapshot(path, {"gen": 2})
        assert read_snapshot(path) == {"gen": 2}
        assert read_snapshot(fallback_path(path)) == {"gen": 1}
        assert fallback_path(path).name.endswith(FALLBACK_SUFFIX)


class TestCorruptionDetection:
    @pytest.mark.parametrize("flavor", ["truncate", "garble"])
    def test_corruption_fails_the_digest(self, tmp_path, flavor):
        path = tmp_path / "state.ckpt"
        write_snapshot(path, {"rows": list(range(64))})
        corrupt_file(path, flavor)
        with pytest.raises(SnapshotCorrupt):
            read_snapshot(path)

    def test_raw_pickle_fails_the_magic(self, tmp_path):
        import pickle

        path = tmp_path / "state.ckpt"
        path.write_bytes(pickle.dumps({"legacy": True}))
        with pytest.raises(SnapshotCorrupt, match="header"):
            read_snapshot(path)

    def test_unknown_corruption_flavor_rejected(self, tmp_path):
        path = tmp_path / "state.ckpt"
        write_snapshot(path, {})
        with pytest.raises(ValueError, match="flavor"):
            corrupt_file(path, "melt")


class TestReapStaleTemps:
    def test_dead_pid_temps_are_swept(self, tmp_path):
        stale = tmp_path / "stream-abc.ckpt.tmp.999999"
        stale.write_bytes(b"half-written")
        legacy = tmp_path / "stream-abc.tmp.999999"
        legacy.write_bytes(b"older naming")
        reaped = reap_stale_temps(tmp_path, "stream-abc")
        assert sorted(p.name for p in reaped) == [
            "stream-abc.ckpt.tmp.999999",
            "stream-abc.tmp.999999",
        ]
        assert not stale.exists() and not legacy.exists()

    def test_live_pid_temps_survive(self, tmp_path):
        live = tmp_path / f"stream-abc.ckpt.tmp.{os.getpid()}"
        live.write_bytes(b"in flight")
        assert reap_stale_temps(tmp_path, "stream-abc") == []
        assert live.exists()

    def test_other_stems_untouched(self, tmp_path):
        other = tmp_path / "campaign-m.ckpt.tmp.999999"
        other.write_bytes(b"not ours")
        reap_stale_temps(tmp_path, "stream-abc")
        assert other.exists()

    def test_missing_directory_is_noop(self, tmp_path):
        assert reap_stale_temps(tmp_path / "absent", "stream-abc") == []
