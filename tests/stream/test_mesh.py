"""Tests for the synthetic mesh source and its O(1) operator."""

import math
import pickle

import numpy as np
import pytest

from repro.stream.mesh import (
    MeshConfig,
    MeshStatsOperator,
    SyntheticMeshSource,
    mesh_results,
)
from repro.stream.source import ShardedSource, WindowedSource

CONFIG = MeshConfig(pairs=1000, block_pairs=256, rounds_per_cycle=8)


class TestSyntheticMeshSource:
    def test_block_layout(self):
        source = SyntheticMeshSource(CONFIG)
        assert len(source) == 4  # ceil(1000 / 256), last block ragged
        first = source.unit_at(0).columns
        last = source.unit_at(3).columns
        assert first.rtt_ms.shape == (256, 8)
        assert last.rtt_ms.shape == (1000 - 3 * 256, 8)
        assert last.pair_ids[0] == 3 * 256

    def test_units_are_bit_identical_across_builds(self):
        a = SyntheticMeshSource(CONFIG, cycle=2).unit_at(1).columns
        b = SyntheticMeshSource(CONFIG, cycle=2).unit_at(1).columns
        np.testing.assert_array_equal(a.rtt_ms, b.rtt_ms)
        np.testing.assert_array_equal(a.times_hours, b.times_hours)

    def test_order_independent_sampling(self):
        source = SyntheticMeshSource(CONFIG)
        backwards = [source.unit_at(i).columns for i in reversed(range(4))]
        forwards = [source.unit_at(i).columns for i in range(4)]
        for early, late in zip(forwards, reversed(backwards)):
            np.testing.assert_array_equal(early.rtt_ms, late.rtt_ms)

    def test_cycles_continue_the_round_counter(self):
        cycle0 = SyntheticMeshSource(CONFIG, cycle=0).unit_at(0).columns
        cycle1 = SyntheticMeshSource(CONFIG, cycle=1).unit_at(0).columns
        assert cycle0.round_offset == 0
        assert cycle1.round_offset == 8
        assert cycle1.times_hours[0] == pytest.approx(8 * CONFIG.cadence_hours)
        # Different rounds hash to different samples.
        assert not np.array_equal(cycle0.rtt_ms, cycle1.rtt_ms, equal_nan=True)

    def test_seed_changes_every_sample_stream(self):
        a = SyntheticMeshSource(CONFIG).unit_at(0).columns
        b = (
            SyntheticMeshSource(MeshConfig(
                pairs=1000, block_pairs=256, rounds_per_cycle=8, seed=1
            )).unit_at(0).columns
        )
        assert not np.array_equal(a.rtt_ms, b.rtt_ms, equal_nan=True)

    def test_loss_rate_is_roughly_configured(self):
        config = MeshConfig(pairs=4096, block_pairs=4096, loss_rate=0.05)
        columns = SyntheticMeshSource(config).unit_at(0).columns
        observed = np.isnan(columns.rtt_ms).mean()
        assert observed == pytest.approx(0.05, abs=0.01)

    def test_records_match_columns(self):
        columns = SyntheticMeshSource(CONFIG, cycle=1).unit_at(2).columns
        records = list(columns.records())
        assert len(records) == len(columns)
        first = records[0]
        assert first.src == int(columns.pair_ids[0])
        assert first.round_index == columns.round_offset
        cell = float(columns.rtt_ms[0, 0])
        assert (first.rtt_ms == cell) or (
            math.isnan(first.rtt_ms) and math.isnan(cell)
        )

    def test_window_concatenation_matches_full_block(self):
        source = SyntheticMeshSource(CONFIG)
        full = source.unit_at(0).columns
        lowhalf = WindowedSource(source, 0, 4).unit_at(0).columns
        highhalf = WindowedSource(source, 4, 8).unit_at(0).columns
        rejoined = np.concatenate([lowhalf.rtt_ms, highhalf.rtt_ms], axis=1)
        np.testing.assert_array_equal(rejoined, full.rtt_ms)
        assert highhalf.round_offset == 4

    def test_out_of_range_block_raises(self):
        source = SyntheticMeshSource(CONFIG)
        with pytest.raises(IndexError):
            source.unit_at(4)

    def test_sharded_feed_matches_ordered_feed(self):
        source = SyntheticMeshSource(CONFIG)
        operator_a = MeshStatsOperator()
        for unit in source:
            operator_a.observe_columns(unit.columns)
        operator_b = MeshStatsOperator()
        sharded = ShardedSource(source, shards=2, queue_units=2)
        for unit in sharded:
            operator_b.observe_columns(unit.columns)
        assert operator_a.finalize() == operator_b.finalize()


class TestMeshStatsOperator:
    def _folded(self, cycles=2):
        operator = MeshStatsOperator()
        for cycle in range(cycles):
            for unit in SyntheticMeshSource(CONFIG, cycle=cycle):
                operator.start_unit(unit.key)
                operator.observe_columns(unit.columns)
        return operator

    def test_counts_add_up(self):
        operator = self._folded()
        assert operator.samples == 1000 * 8 * 2
        assert operator.pair_rows == 1000 * 2
        figures = operator.finalize()
        assert figures["lost"] == operator.lost
        assert figures["loss_rate"] == pytest.approx(CONFIG.loss_rate, abs=0.01)
        assert figures["rtt_min_ms"] >= CONFIG.base_rtt_ms
        assert figures["rtt_mean_ms"] > figures["rtt_min_ms"]

    def test_spread_percentiles_are_monotone(self):
        figures = self._folded().finalize()
        assert (
            0.0
            <= figures["spread_p50_ms"]
            <= figures["spread_p90_ms"]
            <= figures["spread_p99_ms"]
        )
        assert figures["spread_exceeds"] > 0

    def test_all_lost_block_is_harmless(self):
        operator = MeshStatsOperator()
        columns = SyntheticMeshSource(CONFIG).unit_at(0).columns
        all_lost = type(columns)(
            key=columns.key,
            pair_ids=columns.pair_ids,
            times_hours=columns.times_hours,
            rtt_ms=np.full_like(columns.rtt_ms, np.nan),
        )
        operator.observe_columns(all_lost)
        figures = operator.finalize()
        assert figures["lost"] == figures["samples"]
        assert figures["rtt_min_ms"] is None
        assert figures["spread_p99_ms"] == 0.0

    def test_checkpoint_replay_is_bit_identical(self):
        source = SyntheticMeshSource(CONFIG)
        straight = MeshStatsOperator()
        for unit in source:
            straight.observe_columns(unit.columns)

        resumed = MeshStatsOperator()
        for unit in (source.unit_at(0), source.unit_at(1)):
            resumed.observe_columns(unit.columns)
        resumed = pickle.loads(pickle.dumps(resumed))  # kill + restore
        for unit in (source.unit_at(2), source.unit_at(3)):
            resumed.observe_columns(unit.columns)
        assert straight.finalize() == resumed.finalize()

    def test_mesh_results_appends_cycles(self):
        operator = self._folded(cycles=1)
        payload = mesh_results(operator, 7)
        assert payload["cycles"] == 7
        assert payload["samples"] == operator.samples
