"""Tests for the incremental streaming operators."""

import math

import numpy as np
import pytest

from repro.core.congestion import diurnal_power_ratio
from repro.core.routechange import analyze_timeline
from repro.core.suboptimal import DEFAULT_THRESHOLDS_MS
from repro.stream.operators import (
    P2Quantile,
    PathStatsOperator,
    RingWindow,
    goertzel_power,
    windowed_diurnal_power_ratio,
)
from repro.stream.source import trace_unit


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        values = [5.0, 1.0, 9.0, 3.0]
        estimator = P2Quantile(0.1)
        for value in values:
            estimator.observe(value)
        assert estimator.value() == float(np.percentile(values, 10))

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    def test_tracks_large_samples(self):
        rng = np.random.default_rng(7)
        values = rng.normal(100.0, 15.0, size=5000)
        for quantile in (0.1, 0.5, 0.9):
            estimator = P2Quantile(quantile)
            for value in values:
                estimator.observe(float(value))
            exact = float(np.percentile(values, 100 * quantile))
            assert estimator.value() == pytest.approx(exact, abs=1.0)

    def test_pickles_round_trip(self):
        import pickle

        estimator = P2Quantile(0.9)
        for value in range(20):
            estimator.observe(float(value))
        clone = pickle.loads(pickle.dumps(estimator))
        assert clone.value() == estimator.value()
        clone.observe(100.0)
        estimator.observe(100.0)
        assert clone.value() == estimator.value()


class TestRingWindow:
    def test_keeps_last_capacity_values(self):
        window = RingWindow(3)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            window.push(value)
        assert window.values().tolist() == [3.0, 4.0, 5.0]
        assert len(window) == 3

    def test_matrix_mode(self):
        window = RingWindow(2, rows=3)
        window.push(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        window.push(np.array([4.0, 5.0, 6.0], dtype=np.float32))
        window.push(np.array([7.0, 8.0, 9.0], dtype=np.float32))
        matrix = window.values()
        assert matrix.shape == (3, 2)
        assert matrix[:, 0].tolist() == [4.0, 5.0, 6.0]
        assert matrix[:, 1].tolist() == [7.0, 8.0, 9.0]


class TestGoertzel:
    def test_matches_fft_bin_power(self):
        rng = np.random.default_rng(11)
        series = rng.normal(0.0, 1.0, size=96)
        centered = series - series.mean()
        spectrum = np.abs(np.fft.rfft(centered)) ** 2
        for k in (1, 4, 17):
            assert goertzel_power(centered, k) == pytest.approx(
                float(spectrum[k]), rel=1e-9, abs=1e-9
            )


def _times(series: np.ndarray, period: float = 1.0) -> np.ndarray:
    return np.arange(series.size, dtype=float) * period


class TestWindowedDiurnalRatio:
    def _series(self, seed: int, hours: int = 24 * 14, period: float = 1.0):
        rng = np.random.default_rng(seed)
        t = np.arange(0, hours, period)
        return (
            50.0
            + 8.0 * np.sin(2 * np.pi * t / 24.0)
            + rng.normal(0, 1.0, size=t.size)
        ).astype(float)

    def test_matches_batch_ratio_on_diurnal_series(self):
        series = self._series(3)
        batch = diurnal_power_ratio(_times(series), series)
        stream = windowed_diurnal_power_ratio(series, period_hours=1.0)
        assert stream == pytest.approx(batch, rel=1e-9, abs=1e-12)

    def test_matches_batch_ratio_on_noise(self):
        rng = np.random.default_rng(23)
        series = rng.normal(80.0, 2.0, size=24 * 10)
        batch = diurnal_power_ratio(_times(series), series)
        stream = windowed_diurnal_power_ratio(series, period_hours=1.0)
        assert stream == pytest.approx(batch, rel=1e-9, abs=1e-12)

    def test_matches_batch_with_missing_values(self):
        series = self._series(5)
        series[10:20] = np.nan
        series[50] = np.nan
        batch = diurnal_power_ratio(_times(series), series)
        stream = windowed_diurnal_power_ratio(series, period_hours=1.0)
        assert stream == pytest.approx(batch, rel=1e-9, abs=1e-12)

    def test_edge_cases_agree(self):
        for series in (
            np.array([]),
            np.array([1.0, 2.0, 3.0]),               # n < 8
            np.full(12, np.nan),                      # nothing valid
            np.full(48, 10.0),                        # zero variance
            self._series(9, hours=20),                # < 1 day of data
        ):
            batch = diurnal_power_ratio(_times(series), series)
            stream = windowed_diurnal_power_ratio(series, period_hours=1.0)
            if math.isnan(batch):
                assert math.isnan(stream)
            else:
                assert stream == pytest.approx(batch, rel=1e-9, abs=1e-12)

    def test_odd_length_series(self):
        series = self._series(13)[: 24 * 9 + 1]
        batch = diurnal_power_ratio(_times(series), series)
        stream = windowed_diurnal_power_ratio(series, period_hours=1.0)
        assert stream == pytest.approx(batch, rel=1e-9, abs=1e-12)


class TestPathStatsOperator:
    def test_matches_batch_analysis(self, longterm):
        period = longterm.grid.period_hours
        operator = PathStatsOperator(period)
        for key in sorted(longterm.timelines, key=lambda k: (k[0], k[1], int(k[2]))):
            unit = trace_unit(longterm.timelines[key])
            operator.start_unit(unit.key, unit.meta)
            for record in unit.records:
                operator.observe(record)
        summaries = operator.finalize()
        assert len(summaries) == len(longterm.timelines)
        for key, timeline in longterm.timelines.items():
            summary = summaries[(key[0], key[1], int(key[2]))]
            batch = analyze_timeline(timeline)
            assert summary.changes == batch.changes
            assert summary.unique_paths == batch.unique_paths
            if batch.popular_path_id is None:
                assert summary.popular_prevalence is None
            else:
                assert summary.popular_prevalence == batch.popular_prevalence
            assert set(summary.suboptimal) == set(DEFAULT_THRESHOLDS_MS)
