"""Tests for the pull-based stream sources."""

import math

import numpy as np
import pytest

from repro.datasets.io import save_longterm
from repro.datasets.longterm import LongTermConfig, build_longterm_dataset
from repro.datasets.shortterm import ShortTermConfig, build_shortterm_ping_dataset
from repro.obs import metrics as obs_metrics
from repro.stream.source import (
    LongTermFileSource,
    LongTermTraceSource,
    PingSource,
    ShardError,
    ShardedSource,
)


def _rtts_equal(a, b):
    return (a == b) or (math.isnan(a) and math.isnan(b))


class TestLongTermTraceSource:
    @pytest.mark.parametrize("columnar", [False, True])
    def test_units_match_batch_timelines(self, platform, columnar):
        config = LongTermConfig(days=10)
        pairs = platform.server_pairs(dual_stack_only=True)[:3]
        batch = build_longterm_dataset(platform, config, pairs=pairs)
        source = LongTermTraceSource(
            platform, config, pairs=pairs, columnar=columnar
        )

        assert len(source) == len(batch.timelines)
        for unit in source:
            timeline = batch.timelines[
                (unit.key[0], unit.key[1], unit.key[2])
            ]
            assert unit.record_count == timeline.rtt_ms.size
            rtts = timeline.rtt_ms.tolist()
            outcomes = timeline.outcome.tolist()
            for index, record in enumerate(unit.iter_records()):
                assert _rtts_equal(record.rtt_ms, rtts[index])
                assert record.outcome == outcomes[index]
                assert record.round_index == index

    def test_window_check_mirrors_batch(self, platform):
        with pytest.raises(ValueError, match="platform simulates only"):
            LongTermTraceSource(platform, LongTermConfig(days=10_000))


class TestPingSource:
    @pytest.mark.parametrize("columnar", [False, True])
    def test_units_match_batch_timelines(self, platform, columnar):
        config = ShortTermConfig(ping_days=2.0)
        pairs = platform.server_pairs()[:3]
        batch = build_shortterm_ping_dataset(platform, config, pairs=pairs)
        source = PingSource(platform, config, pairs=pairs, columnar=columnar)

        assert len(source) == len(batch.timelines)
        for unit in source:
            timeline = batch.timelines[(unit.key[0], unit.key[1], unit.key[2])]
            rtts = timeline.rtt_ms.tolist()
            assert unit.record_count == len(rtts)
            for index, record in enumerate(unit.iter_records()):
                assert _rtts_equal(record.rtt_ms, rtts[index])


class TestLongTermFileSource:
    def test_replays_saved_archive(self, platform, tmp_path):
        config = LongTermConfig(days=10)
        pairs = platform.server_pairs(dual_stack_only=True)[:2]
        dataset = build_longterm_dataset(platform, config, pairs=pairs)
        path = tmp_path / "longterm.npz"
        save_longterm(dataset, path)

        units = list(LongTermFileSource(path))
        assert len(units) == len(dataset.timelines)
        for unit in units:
            assert unit.kind == "trace"
            timeline = dataset.timelines[(unit.key[0], unit.key[1], unit.key[2])]
            assert len(unit.records) == timeline.rtt_ms.size


class TestShardedSource:
    def test_sharded_equals_serial(self, platform):
        config = LongTermConfig(days=10)
        pairs = platform.server_pairs(dual_stack_only=True)[:3]
        serial = list(LongTermTraceSource(platform, config, pairs=pairs))
        sharded = list(
            ShardedSource(
                LongTermTraceSource(platform, config, pairs=pairs),
                shards=3,
                queue_units=2,
            )
        )
        assert len(sharded) == len(serial)
        for left, right in zip(serial, sharded):
            assert left.key == right.key
            assert left.record_count == right.record_count
            for a, b in zip(left.iter_records(), right.iter_records()):
                assert _rtts_equal(a.rtt_ms, b.rtt_ms)
                assert a.outcome == b.outcome
                assert a.as_path == b.as_path

    def test_iter_from_offset(self, platform):
        config = LongTermConfig(days=10)
        pairs = platform.server_pairs(dual_stack_only=True)[:2]
        source = LongTermTraceSource(platform, config, pairs=pairs)
        full = [unit.key for unit in ShardedSource(source, shards=2).iter_from(0)]
        tail = [unit.key for unit in ShardedSource(source, shards=2).iter_from(2)]
        assert tail == full[2:]

    def test_rejects_bad_queue_bound(self, platform):
        source = LongTermTraceSource(
            platform, LongTermConfig(days=10),
            pairs=platform.server_pairs(dual_stack_only=True)[:1],
        )
        with pytest.raises(ValueError, match="queue_units"):
            ShardedSource(source, shards=2, queue_units=0)

    def test_trim_keeps_realization_cache_bounded(self, platform):
        config = LongTermConfig(days=10)
        pairs = platform.server_pairs(dual_stack_only=True)[:3]
        source = LongTermTraceSource(platform, config, pairs=pairs)
        for _ in source:
            pass
        trimmed_pairs = {(src.server_id, dst.server_id) for src, dst, _ in source.tasks}
        leftover = [
            key for key in platform._realizations
            if (key[0], key[1]) in trimmed_pairs
        ]
        assert leftover == []


class _ExplodingSource:
    """Fake source whose fourth unit dies after doing partial work."""

    kind = "test"

    def __len__(self):
        return 6

    def unit_at(self, index):
        registry = obs_metrics.get_registry()
        registry.counter("test.shard_crash.units_built").inc()
        if index == 3:
            registry.counter("test.shard_crash.partial_work").inc(2)
            raise RuntimeError("boom at unit 3")
        return index


class TestShardErrorContext:
    def test_shard_error_carries_metrics_delta(self):
        source = ShardedSource(_ExplodingSource(), shards=2, queue_units=2)
        registry = obs_metrics.get_registry()
        partial_before = registry.counter("test.shard_crash.partial_work").value

        with pytest.raises(ShardError) as err:
            list(source.iter_from(0))

        # Worker 1 owns units 1, 3, 5 and dies building unit 3.
        assert err.value.shard == 1
        delta = err.value.metrics_delta
        assert delta["counters"]["test.shard_crash.partial_work"] == 2
        assert delta["counters"]["test.shard_crash.units_built"] == 1

        message = str(err.value)
        assert "stream shard 1 failed" in message
        assert "metrics delta:" in message
        assert "test.shard_crash.partial_work=2" in message
        assert "boom at unit 3" in message  # the worker traceback rides along

        # The doomed unit's delta is merged into the parent registry too.
        partial_after = registry.counter("test.shard_crash.partial_work").value
        assert partial_after == partial_before + 2


class TestShardedDrain:
    """Deterministic shutdown of a sharded stream mid-ingest."""

    def _source(self):
        from repro.stream.mesh import MeshConfig, SyntheticMeshSource

        return SyntheticMeshSource(
            MeshConfig(pairs=4096, block_pairs=256)  # 16 units
        )

    def test_close_mid_stream_joins_all_workers(self):
        sharded = ShardedSource(self._source(), shards=3, queue_units=1)
        iterator = sharded.iter_from(0)
        seen = [next(iterator).key for _ in range(4)]
        iterator.close()
        assert len(seen) == 4
        assert sharded.last_workers, "fan-out should have forked workers"
        for worker in sharded.last_workers:
            assert not worker.is_alive()
            # exitcode 0 means the stop flag drained the worker; a
            # negative code would mean the parent fell back to terminate.
            assert worker.exitcode == 0

    def test_exhausted_stream_leaves_workers_dead(self):
        sharded = ShardedSource(self._source(), shards=2, queue_units=2)
        units = list(sharded.iter_from(0))
        assert len(units) == 16
        for worker in sharded.last_workers:
            assert not worker.is_alive()
            assert worker.exitcode == 0

    def test_drained_resume_from_offset_is_exact(self):
        source = self._source()
        serial_keys = [source.unit_at(i).key for i in range(16)]
        sharded = ShardedSource(source, shards=2, queue_units=1)
        iterator = sharded.iter_from(0)
        head = [next(iterator).key for _ in range(5)]
        iterator.close()
        tail = [
            unit.key
            for unit in ShardedSource(source, shards=2, queue_units=1).iter_from(5)
        ]
        assert head + tail == serial_keys
