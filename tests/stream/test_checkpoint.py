"""Tests for checkpoint snapshots and their fingerprint keying."""

from repro.stream.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    checkpoint_fingerprint,
    required_phases,
)
from repro.stream.snapshot import read_snapshot, write_snapshot


class TestFingerprint:
    def test_stable_for_equal_parts(self):
        assert checkpoint_fingerprint("a", 1) == checkpoint_fingerprint("a", 1)

    def test_sensitive_to_parts(self):
        assert checkpoint_fingerprint("a", 1) != checkpoint_fingerprint("a", 2)


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path, "abc123")
        store.save("longterm", 42, {"state": [1, 2, 3]}, {"done": "payload"})
        state = store.load()
        assert state is not None
        assert state["phase"] == "longterm"
        assert state["units_done"] == 42
        assert state["operator"] == {"state": [1, 2, 3]}
        assert state["completed"] == {"done": "payload"}
        assert state["schema"] == CHECKPOINT_SCHEMA_VERSION

    def test_missing_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path, "nothing").load() is None

    def test_corrupt_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path, "abc123")
        store.save("ping", 1, None, {})
        store.path.write_bytes(b"\x80\x04 truncated garbage")
        assert store.load() is None

    def test_schema_mismatch_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path, "abc123")
        store.save("ping", 1, None, {})
        payload = read_snapshot(store.path)
        payload["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        write_snapshot(store.path, payload)
        assert store.load() is None

    def test_fingerprint_mismatch_is_none(self, tmp_path):
        CheckpointStore(tmp_path, "run-a").save("ping", 1, None, {})
        other = CheckpointStore(tmp_path, "run-b")
        # Different fingerprint -> different file; also reject a copy
        # carrying the wrong fingerprint inside.
        assert other.load() is None
        other.path.write_bytes(CheckpointStore(tmp_path, "run-a").path.read_bytes())
        assert other.load() is None

    def test_clear_is_idempotent(self, tmp_path):
        store = CheckpointStore(tmp_path, "abc123")
        store.save("ping", 1, None, {})
        store.clear()
        assert store.load() is None
        store.clear()  # no snapshot left: still fine


class TestRequiredPhases:
    def test_longterm_only(self):
        assert required_phases(["fig3", "fig6"]) == {
            "longterm": True, "ping": False, "segment": False,
        }

    def test_localization_pulls_ping(self):
        assert required_phases(["localization"]) == {
            "longterm": False, "ping": True, "segment": True,
        }

    def test_all(self):
        assert required_phases(["fig3", "congestion-norm", "localization"]) == {
            "longterm": True, "ping": True, "segment": True,
        }
