"""Golden equivalence and unit tests for the columnar stream plane.

The engine's columnar mode (the default) feeds operators whole column
blocks through ``observe_columns``; the record mode drives the same
operators one record at a time.  Every experiment result must be
identical between the two, at any shard count -- plus unit-level checks
for the batch primitives the columnar operators lean on.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.datasets.longterm import LongTermConfig
from repro.datasets.mutation import VersionedDict, dict_version
from repro.datasets.shortterm import ShortTermConfig
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.operators import (
    P2Quantile,
    RingWindow,
    batched_diurnal_power_ratios,
    windowed_diurnal_power_ratio,
)

LONGTERM = LongTermConfig(days=20)
SHORTTERM = ShortTermConfig(ping_days=3.0, trace_days=6.0)


def _run_engine(platform, columnar: bool, shards: int = 1):
    engine = StreamEngine(
        platform,
        longterm_config=LONGTERM,
        shortterm_config=SHORTTERM,
        config=StreamConfig(columnar=columnar, shards=shards),
    )
    return engine.run()


def _values_equal(left, right):
    if isinstance(left, float) and isinstance(right, float):
        if math.isnan(left) and math.isnan(right):
            return True
    return left == right


def _assert_results_equal(reference, candidate):
    assert [r.experiment_id for r in reference] == [
        r.experiment_id for r in candidate
    ]
    for expected, actual in zip(reference, candidate):
        assert expected.report == actual.report
        assert len(expected.metrics) == len(actual.metrics)
        for left, right in zip(expected.metrics, actual.metrics):
            assert left.name == right.name
            assert _values_equal(left.measured, right.measured)


class TestEngineEquivalence:
    @pytest.fixture(scope="class")
    def record_results(self, platform):
        return _run_engine(platform, columnar=False)

    def test_columnar_serial_matches_record_path(self, platform, record_results):
        columnar = _run_engine(platform, columnar=True)
        _assert_results_equal(record_results, columnar)

    def test_columnar_sharded_matches_record_path(self, platform, record_results):
        columnar = _run_engine(platform, columnar=True, shards=2)
        _assert_results_equal(record_results, columnar)


class TestP2ObserveMany:
    @pytest.mark.parametrize("count", [0, 3, 5, 17, 400])
    def test_matches_sequential_observe(self, count):
        rng = np.random.default_rng(42)
        values = rng.gamma(2.0, 10.0, size=count)
        one_by_one = P2Quantile(0.10)
        for value in values:
            one_by_one.observe(float(value))
        batched = P2Quantile(0.10)
        batched.observe_many(values)
        assert batched.count == one_by_one.count
        assert _values_equal(batched.value(), one_by_one.value())

    def test_chunked_feed_equals_single_feed(self):
        rng = np.random.default_rng(7)
        values = rng.normal(50.0, 5.0, size=101)
        whole = P2Quantile(0.90)
        whole.observe_many(values)
        chunked = P2Quantile(0.90)
        for start in range(0, values.size, 13):
            chunked.observe_many(values[start:start + 13])
        assert chunked.value() == whole.value()


class TestRingWindowExtend:
    @pytest.mark.parametrize("capacity", [4, 16])
    @pytest.mark.parametrize("batch", [1, 3, 4, 5, 11])
    def test_scalar_extend_matches_push(self, capacity, batch):
        rng = np.random.default_rng(3)
        pushed = RingWindow(capacity)
        extended = RingWindow(capacity)
        for _ in range(5):
            values = rng.normal(100.0, 10.0, size=batch)
            for value in values:
                pushed.push(float(value))
            extended.extend(values)
            assert extended.values().tobytes() == pushed.values().tobytes()

    @pytest.mark.parametrize("batch", [2, 7, 16])
    def test_matrix_extend_matches_push(self, batch):
        rng = np.random.default_rng(5)
        rows = 3
        pushed = RingWindow(8, rows=rows)
        extended = RingWindow(8, rows=rows)
        for _ in range(4):
            block = rng.normal(10.0, 1.0, size=(rows, batch))
            for column in range(batch):
                pushed.push(block[:, column])
            extended.extend(block)
            assert extended.values().tobytes() == pushed.values().tobytes()

    def test_extend_empty_is_noop(self):
        window = RingWindow(4)
        window.push(1.0)
        window.extend(np.empty(0))
        assert window.values().tolist() == [1.0]


class TestBatchedDiurnal:
    def test_matches_scalar_path(self):
        rng = np.random.default_rng(11)
        hours = np.arange(0, 72, 0.25)
        series_list = []
        # Mixed shapes: diurnal, flat noise, too-short, NaN-ridden.
        series_list.append(
            100 + 10 * np.sin(2 * np.pi * hours / 24) + rng.normal(0, 1, hours.size)
        )
        series_list.append(rng.normal(100, 1, hours.size))
        series_list.append(np.array([1.0, 2.0, 3.0]))
        noisy = rng.normal(100, 1, hours.size)
        noisy[::3] = np.nan
        series_list.append(noisy)
        series_list.append(np.full(40, np.nan))

        batched = batched_diurnal_power_ratios(series_list, period_hours=0.25)
        assert len(batched) == len(series_list)
        for series, ratio in zip(series_list, batched):
            expected = windowed_diurnal_power_ratio(series, period_hours=0.25)
            if math.isnan(expected):
                assert math.isnan(ratio)
            else:
                assert ratio == expected


class TestVersionedDict:
    def test_version_bumps_on_every_mutator(self):
        mapping = VersionedDict()
        seen = {dict_version(mapping)}

        def check():
            version = dict_version(mapping)
            assert version not in seen
            seen.add(version)

        mapping["a"] = 1
        check()
        mapping.update(b=2)
        check()
        mapping.setdefault("c", 3)
        check()
        del mapping["a"]
        check()
        mapping.pop("b")
        check()
        mapping.popitem()
        check()
        mapping["d"] = 4
        check()
        mapping.clear()
        check()

    def test_plain_dict_version_tracks_size(self):
        plain = {"a": 1}
        first = dict_version(plain)
        plain["b"] = 2
        assert dict_version(plain) != first

    def test_pickle_round_trip(self):
        # The artifact cache pickles datasets whose timeline maps are
        # VersionedDicts; the default dict-subclass protocol would call
        # __setitem__ before the version slot exists.
        import pickle

        mapping = VersionedDict({"a": 1})
        mapping["b"] = 2
        restored = pickle.loads(
            pickle.dumps(mapping, protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert type(restored) is VersionedDict
        assert dict(restored) == {"a": 1, "b": 2}
        assert restored.version == mapping.version
        restored["c"] = 3
        assert restored.version == mapping.version + 1
