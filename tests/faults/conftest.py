"""Fault-plane test isolation: never leak an installed plane."""

import pytest

from repro.faults.plane import uninstall
from repro.obs.metrics import get_registry


@pytest.fixture(autouse=True)
def _clean_plane():
    """Uninstall the global fault plane and reset metrics after each test."""
    get_registry().reset()
    yield
    uninstall()
    get_registry().reset()
