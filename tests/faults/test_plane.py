"""Tests for the deterministic fault schedule and recovery policies."""

import json

import pytest

from repro.faults.plane import (
    FaultSchedule,
    FaultsConfig,
    RetryPolicy,
    SupervisionPolicy,
    backoff_delay,
    faults_config_from_dict,
    get_plane,
    install,
    load_faults_config,
    retry_policy_from_dict,
    supervision_policy_from_dict,
    uninstall,
)


class TestFaultsConfig:
    def test_inactive_by_default(self):
        config = FaultsConfig(seed=1)
        assert not config.active

    def test_active_with_any_injector(self):
        assert FaultsConfig(crash_units=(3,)).active
        assert FaultsConfig(stall_rate=0.1).active
        assert FaultsConfig(transient_units=(0,)).active
        assert FaultsConfig(corrupt_saves=(0,)).active
        assert FaultsConfig(skew_rate=0.5, skew_max_s=1.0).active
        # Skew needs both knobs: rate without magnitude never fires.
        assert not FaultsConfig(skew_rate=0.5).active

    def test_validation(self):
        with pytest.raises(ValueError, match="crash_rate"):
            FaultsConfig(crash_rate=1.5)
        with pytest.raises(ValueError, match="crash_repeats"):
            FaultsConfig(crash_repeats=0)
        with pytest.raises(ValueError, match="stall_s"):
            FaultsConfig(stall_s=-1.0)
        with pytest.raises(ValueError, match="crash_units"):
            FaultsConfig(crash_units=(-1,))
        with pytest.raises(ValueError, match="seed"):
            FaultsConfig(seed="nope")


class TestFaultSchedule:
    def test_decisions_are_deterministic(self):
        a = FaultSchedule(FaultsConfig(seed=42, crash_rate=0.3,
                                       stall_rate=0.3, transient_rate=0.3))
        b = FaultSchedule(FaultsConfig(seed=42, crash_rate=0.3,
                                       stall_rate=0.3, transient_rate=0.3))
        for index in range(200):
            assert a.crash(index, 0) == b.crash(index, 0)
            assert a.stall_s_for(index, 0) == b.stall_s_for(index, 0)
            assert a.transient(index, 0) == b.transient(index, 0)

    def test_seed_changes_the_schedule(self):
        a = FaultSchedule(FaultsConfig(seed=1, crash_rate=0.5))
        b = FaultSchedule(FaultsConfig(seed=2, crash_rate=0.5))
        decisions_a = [a.crash(i, 0) for i in range(256)]
        decisions_b = [b.crash(i, 0) for i in range(256)]
        assert decisions_a != decisions_b

    def test_rate_roughly_respected(self):
        plane = FaultSchedule(FaultsConfig(seed=7, transient_rate=0.25))
        hits = sum(plane.transient(i, 0) for i in range(4000))
        assert 800 < hits < 1200  # ~1000 expected

    def test_targeted_units_always_fire(self):
        plane = FaultSchedule(FaultsConfig(seed=0, crash_units=(3, 9)))
        assert plane.crash(3, 0) and plane.crash(9, 0)
        assert not plane.crash(4, 0)

    def test_attempt_gating_heals(self):
        plane = FaultSchedule(
            FaultsConfig(crash_units=(3,), crash_repeats=2,
                         stall_units=(5,), stall_s=0.5,
                         transient_units=(7,), transient_repeats=1)
        )
        assert plane.crash(3, 0) and plane.crash(3, 1)
        assert not plane.crash(3, 2)
        assert plane.stall_s_for(5, 0) == 0.5
        assert plane.stall_s_for(5, 1) == 0.0
        assert plane.transient(7, 0)
        assert not plane.transient(7, 1)

    def test_corrupt_targets_save_ordinals(self):
        plane = FaultSchedule(FaultsConfig(corrupt_saves=(1,)))
        assert not plane.corrupt("stream", 0)
        assert plane.corrupt("stream", 1)
        assert plane.corrupt("campaign-m", 1)  # ordinal-targeted, any store

    def test_corrupt_rate_distinguishes_stores(self):
        plane = FaultSchedule(FaultsConfig(seed=3, corrupt_rate=0.5))
        a = [plane.corrupt("stream", n) for n in range(128)]
        b = [plane.corrupt("campaign-x", n) for n in range(128)]
        assert a != b

    def test_cadence_skew_range_and_determinism(self):
        plane = FaultSchedule(FaultsConfig(seed=11, skew_rate=1.0,
                                           skew_max_s=2.0))
        skews = [plane.cadence_skew_s("m", cycle) for cycle in range(100)]
        assert skews == [plane.cadence_skew_s("m", c) for c in range(100)]
        assert all(-2.0 <= s <= 2.0 for s in skews)
        assert any(s < 0 for s in skews) and any(s > 0 for s in skews)
        assert plane.cadence_skew_s("other", 0) != plane.cadence_skew_s("m", 0)


class TestGlobalPlane:
    def test_install_get_uninstall(self):
        assert get_plane() is None
        plane = install(FaultsConfig(seed=5, crash_units=(0,)))
        assert get_plane() is plane
        uninstall()
        assert get_plane() is None


class TestBackoffDelay:
    def test_deterministic_and_jittered(self):
        a = backoff_delay(0.1, 10.0, 1, seed=9, key=2)
        assert a == backoff_delay(0.1, 10.0, 1, seed=9, key=2)
        assert 0.05 <= a < 0.15  # base * [0.5, 1.5)

    def test_exponential_growth_capped_by_ceiling(self):
        small = backoff_delay(0.1, 100.0, 1, 0, 0)
        bigger = backoff_delay(0.1, 100.0, 4, 0, 0)
        assert bigger > small
        capped = backoff_delay(0.1, 0.2, 50, 0, 0)
        assert capped < 0.2 * 1.5 + 1e-9

    def test_zero_base_is_zero(self):
        assert backoff_delay(0.0, 1.0, 3, 0, 0) == 0.0


class TestPolicies:
    def test_supervision_validation(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(stall_timeout_s=0)
        with pytest.raises(ValueError):
            SupervisionPolicy(unit_attempts=0)

    def test_retry_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestLoaders:
    def test_strict_keys(self):
        with pytest.raises(ValueError, match="unknown faults config keys"):
            faults_config_from_dict({"crash_rte": 0.1})
        with pytest.raises(ValueError, match="unknown supervision"):
            supervision_policy_from_dict({"stall_timeout": 1})
        with pytest.raises(ValueError, match="unknown retry"):
            retry_policy_from_dict({"attempts": 1})
        with pytest.raises(ValueError, match="must be an object"):
            faults_config_from_dict([1, 2])

    def test_load_file_with_seed_override(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"seed": 1, "crash_units": [3]}))
        config = load_faults_config(path)
        assert (config.seed, config.crash_units) == (1, (3,))
        assert load_faults_config(path, seed=99).seed == 99
