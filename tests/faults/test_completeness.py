"""Tests for the data-completeness accountant."""

from repro.faults.completeness import CompletenessView, DataCompleteness, MissingUnit


class TestDataCompleteness:
    def test_all_delivered(self):
        acc = DataCompleteness()
        for i in range(4):
            acc.deliver(i)
        report = acc.report()
        assert report["expected"] == 4
        assert report["delivered"] == 4
        assert report["missing"] == []
        assert report["coverage"] == 1.0
        assert acc.coverage() == 1.0

    def test_missing_units_are_reported_exactly(self):
        acc = DataCompleteness()
        acc.deliver(0)
        acc.record_missing(MissingUnit(index=1, shard=1, reason="quarantined"))
        acc.deliver(2)
        acc.record_missing(
            MissingUnit(index=3, shard=1, reason="failed", key=(0, 3, 4))
        )
        report = acc.report()
        assert report["expected"] == 4
        assert report["delivered"] == 2
        assert report["coverage"] == 0.5
        assert [row["index"] for row in report["missing"]] == [1, 3]
        assert report["missing"][0]["reason"] == "quarantined"
        assert report["missing"][1]["key"] == [0, 3, 4]  # JSON-friendly list

    def test_missing_is_idempotent_per_index(self):
        acc = DataCompleteness()
        acc.record_missing(MissingUnit(index=5, shard=0, reason="failed"))
        acc.record_missing(MissingUnit(index=5, shard=0, reason="failed"))
        assert len(acc.report()["missing"]) == 1

    def test_delivery_heals_a_recorded_miss(self):
        acc = DataCompleteness()
        acc.record_missing(MissingUnit(index=2, shard=0, reason="failed"))
        assert acc.coverage() < 1.0
        acc.deliver(2)
        report = acc.report()
        assert report["missing"] == []
        assert report["coverage"] == 1.0

    def test_empty_accountant_is_complete(self):
        assert DataCompleteness().coverage() == 1.0

    def test_shard_missing(self):
        acc = DataCompleteness()
        acc.record_missing(MissingUnit(index=1, shard=1, reason="quarantined"))
        acc.record_missing(MissingUnit(index=3, shard=1, reason="quarantined"))
        acc.record_missing(MissingUnit(index=2, shard=0, reason="failed"))
        assert acc.shard_missing(1) == [1, 3]
        assert acc.shard_missing(0) == [2]
        assert acc.shard_missing(7) == []

    def test_state_round_trip(self):
        acc = DataCompleteness()
        acc.deliver(0)
        acc.record_missing(MissingUnit(index=1, shard=2, reason="failed"))
        clone = DataCompleteness.from_state(acc.state())
        assert clone.report() == acc.report()
        adopted = DataCompleteness()
        adopted.adopt(acc.state())
        assert adopted.report() == acc.report()


class TestCompletenessView:
    def test_offsets_indices_into_parent(self):
        acc = DataCompleteness()
        view = acc.offset_view(10)
        assert isinstance(view, CompletenessView)
        view.deliver(0)
        view.record_missing(MissingUnit(index=3, shard=1, reason="failed"))
        report = acc.report()
        assert report["delivered"] == 1
        assert [row["index"] for row in report["missing"]] == [13]

    def test_disjoint_cycles_do_not_collide(self):
        # Without offsetting, cycle 1's delivery of unit 3 would heal
        # cycle 0's genuine miss of unit 3.
        acc = DataCompleteness()
        cycle0 = acc.offset_view(0)
        cycle1 = acc.offset_view(4)
        cycle0.record_missing(MissingUnit(index=3, shard=0, reason="failed"))
        cycle1.deliver(3)
        report = acc.report()
        assert [row["index"] for row in report["missing"]] == [3]
        assert report["delivered"] == 1
