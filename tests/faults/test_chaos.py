"""Chaos harness: seeded faults must not change final figures.

The acceptance bar for the fault plane is byte-identity: a campaign run
under a seeded fault schedule, at any worker count, must produce final
results byte-identical to the fault-free run whenever completeness
reaches 100% after retries — and an exact machine-readable deficit
otherwise.
"""

import json

import pytest

from repro.faults.plane import FaultsConfig, SupervisionPolicy, install, uninstall
from repro.obs.metrics import get_registry
from repro.service.campaign import Campaign, driver_for
from repro.service.config import CampaignConfig
from repro.stream.mesh import MeshConfig

MESH = MeshConfig(pairs=2048, block_pairs=128)  # 16 units per cycle

# Aggressive supervision so the chaos tests stay fast: short stall
# timeout, near-zero backoff, generous retry budget.
QUICK = SupervisionPolicy(
    stall_timeout_s=0.6,
    poll_s=0.02,
    max_restarts=3,
    restart_backoff_s=0.01,
    backoff_ceiling_s=0.05,
    unit_attempts=2,
)

# One of each recoverable fault, aimed at specific units: a worker
# crash on unit 3, a stall longer than the stall timeout on unit 5,
# and a transient build exception on unit 7.
RECOVERABLE = FaultsConfig(
    seed=7,
    crash_units=(3,),
    stall_units=(5,),
    stall_s=1.5,
    transient_units=(7,),
)


def _campaign(tmp_path, name="mesh", supervision=None, **overrides):
    fields = dict(
        name=name, kind="mesh", cycles=1, rounds_per_cycle=4,
        checkpoint_every=4, mesh=MESH,
    )
    fields.update(overrides)
    config = CampaignConfig(**fields)
    return Campaign(config, driver_for(config), tmp_path, supervision=supervision)


def _run_to_completion(campaign, limit=20):
    for _ in range(limit):
        if campaign.run_cycle() in ("finished", "skipped"):
            return campaign.results_path.read_bytes()
    raise AssertionError("campaign never finished")


def _reference(tmp_path, **overrides):
    """Fault-free, unsupervised run: the byte-identity baseline."""
    return _run_to_completion(_campaign(tmp_path, name="ref", **overrides))


class TestChaosEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_recoverable_faults_yield_identical_bytes(self, tmp_path, shards):
        reference = _reference(tmp_path)
        install(RECOVERABLE)
        campaign = _campaign(
            tmp_path, name=f"mesh{shards}", shards=shards, supervision=QUICK
        )
        chaotic = _run_to_completion(campaign)
        assert chaotic == reference
        report = json.loads(chaotic)["completeness"]
        assert report["coverage"] == 1.0
        assert report["missing"] == []
        registry = get_registry()
        assert registry.counter("faults.injected").value >= 3
        assert registry.counter("shard.restarts").value >= 1

    def test_fault_free_supervised_matches_unsupervised(self, tmp_path):
        reference = _reference(tmp_path)
        campaign = _campaign(tmp_path, name="sup", shards=2, supervision=QUICK)
        assert _run_to_completion(campaign) == reference

    def test_drain_and_resume_mid_chaos_is_byte_identical(self, tmp_path):
        install(RECOVERABLE)
        first = _campaign(
            tmp_path, name="resume", shards=2, supervision=QUICK, cycles=2
        )
        assert first.run_cycle() == "completed"  # cycle 0, checkpointed
        uninstall()  # process "restart": plane comes back with same seed
        install(RECOVERABLE)
        second = _campaign(
            tmp_path, name="resume", shards=2, supervision=QUICK, cycles=2
        )
        assert second.restore()
        assert second.cycle == 1

        expected = _reference(tmp_path, cycles=2)
        resumed = _run_to_completion(second)
        assert resumed == expected
        assert json.loads(resumed)["completeness"]["coverage"] == 1.0


class TestExactDeficit:
    def test_exhausted_retries_report_machine_readable_deficit(self, tmp_path):
        # Unit 3 crashes on every attempt; with a restart budget of one,
        # the owning shard is quarantined and its remaining units become
        # the deficit.
        install(FaultsConfig(seed=7, crash_units=(3,), crash_repeats=99))
        policy = SupervisionPolicy(
            stall_timeout_s=0.6,
            poll_s=0.02,
            max_restarts=1,
            restart_backoff_s=0.01,
            backoff_ceiling_s=0.05,
            unit_attempts=2,
        )
        campaign = _campaign(tmp_path, name="deficit", shards=2, supervision=policy)
        _run_to_completion(campaign)

        report = campaign.results["completeness"]
        # Shard 1 of 2 owns the odd indices; unit 3 crashes forever, so
        # after max_restarts=1 the shard is quarantined and every odd
        # unit from 3 on is missing.
        expected_missing = [i for i in range(16) if i % 2 == 1 and i >= 3]
        assert [row["index"] for row in report["missing"]] == expected_missing
        assert report["delivered"] == 16 - len(expected_missing)
        assert report["coverage"] == pytest.approx((16 - 7) / 16)
        for row in report["missing"]:
            assert row["shard"] == 1
            assert row["reason"] == "quarantined"

        registry = get_registry()
        assert registry.counter("shard.restarts").value == 2
        assert registry.counter("shard.quarantined").value == 1
        assert registry.counter("faults.injected").value == 2

    def test_degraded_results_still_write(self, tmp_path):
        install(FaultsConfig(seed=7, crash_units=(3,), crash_repeats=99))
        policy = SupervisionPolicy(
            stall_timeout_s=0.6,
            poll_s=0.02,
            max_restarts=0,
            restart_backoff_s=0.01,
            backoff_ceiling_s=0.05,
            unit_attempts=1,
        )
        campaign = _campaign(tmp_path, name="deg", shards=2, supervision=policy)
        payload = json.loads(_run_to_completion(campaign))
        assert payload["completeness"]["coverage"] < 1.0
        assert payload["completeness"]["missing"]  # exact rows present
