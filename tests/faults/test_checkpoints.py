"""Hardening tests shared by both checkpoint stores.

Each store must survive corruption (fall back to the previous
generation), injected corruption from the fault plane, and stale temp
files left by dead writers -- and count every recovery.
"""

from repro.faults.plane import FaultsConfig, install
from repro.obs.metrics import get_registry
from repro.service.checkpoint import CampaignCheckpointStore
from repro.stream.checkpoint import CheckpointStore
from repro.stream.snapshot import corrupt_file, fallback_path


class TestStreamStoreHardening:
    def _store(self, tmp_path):
        return CheckpointStore(tmp_path, "abc123")

    def test_second_save_rotates_a_fallback(self, tmp_path):
        store = self._store(tmp_path)
        store.save("longterm", 1, None, {})
        assert not fallback_path(store.path).exists()
        store.save("longterm", 2, None, {})
        assert fallback_path(store.path).exists()

    def test_corrupt_primary_recovers_previous_generation(self, tmp_path):
        store = self._store(tmp_path)
        store.save("longterm", 1, {"gen": 1}, {})
        store.save("longterm", 2, {"gen": 2}, {})
        corrupt_file(store.path)
        payload = store.load()
        assert payload is not None
        assert payload["units_done"] == 1
        assert payload["operator"] == {"gen": 1}
        registry = get_registry()
        assert registry.counter("stream.checkpoint.corrupt").value == 1
        assert registry.counter("stream.checkpoint.recovered").value == 1

    def test_both_generations_corrupt_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        store.save("longterm", 1, None, {})
        store.save("longterm", 2, None, {})
        corrupt_file(store.path)
        corrupt_file(fallback_path(store.path), "garble")
        assert store.load() is None

    def test_plane_injects_corruption_on_targeted_save(self, tmp_path):
        install(FaultsConfig(seed=1, corrupt_saves=(1,)))
        store = self._store(tmp_path)
        store.save("longterm", 1, {"gen": 1}, {})  # save 0: clean
        store.save("longterm", 2, {"gen": 2}, {})  # save 1: corrupted
        registry = get_registry()
        assert registry.counter("faults.injected{kind=corrupt}").value == 1
        assert registry.counter("faults.injected").value == 1
        payload = store.load()  # falls back to generation 1
        assert payload["operator"] == {"gen": 1}
        assert registry.counter("stream.checkpoint.recovered").value == 1

    def test_open_reaps_dead_writer_temps(self, tmp_path):
        stale = tmp_path / "stream-abc123.ckpt.tmp.999999"
        stale.write_bytes(b"torn write")
        self._store(tmp_path)
        assert not stale.exists()
        registry = get_registry()
        assert registry.counter("stream.checkpoint.temps_reaped").value == 1

    def test_clear_removes_fallback_generation(self, tmp_path):
        store = self._store(tmp_path)
        store.save("longterm", 1, None, {})
        store.save("longterm", 2, None, {})
        store.clear()
        assert not store.path.exists()
        assert not fallback_path(store.path).exists()
        assert store.load() is None


class TestCampaignStoreHardening:
    def _store(self, tmp_path, name="mesh"):
        return CampaignCheckpointStore(tmp_path, name, "f" * 8)

    def test_corrupt_primary_recovers_previous_generation(self, tmp_path):
        store = self._store(tmp_path)
        store.save(1, 4, {"gen": 1})
        store.save(2, 0, {"gen": 2})
        corrupt_file(store.path)
        payload = store.load()
        assert payload is not None
        assert (payload["cycle"], payload["operator"]) == (1, {"gen": 1})
        registry = get_registry()
        counter = registry.counter(
            "service.checkpoint.recovered{campaign=mesh}"
        )
        assert counter.value == 1

    def test_plane_targets_one_store_by_tag(self, tmp_path):
        # corrupt_saves ordinals are per store; each store counts its own
        # saves, so ordinal 0 hits both stores' first save independently.
        install(FaultsConfig(seed=1, corrupt_saves=(0,)))
        store = self._store(tmp_path)
        store.save(1, 0, None)
        registry = get_registry()
        assert registry.counter("faults.injected{kind=corrupt}").value == 1
        assert store.load() is None  # no previous generation to serve

    def test_open_reaps_dead_writer_temps(self, tmp_path):
        stale = tmp_path / f"campaign-mesh-{'f' * 8}.ckpt.tmp.999999"
        stale.write_bytes(b"torn write")
        self._store(tmp_path)
        assert not stale.exists()
        registry = get_registry()
        counter = registry.counter(
            "service.checkpoint.temps_reaped{campaign=mesh}"
        )
        assert counter.value == 1

    def test_completeness_rides_the_snapshot(self, tmp_path):
        store = self._store(tmp_path)
        state = {"delivered": 3, "missing": []}
        store.save(0, 3, None, completeness=state)
        assert store.load()["completeness"] == state

    def test_clear_removes_fallback_generation(self, tmp_path):
        store = self._store(tmp_path)
        store.save(1, 0, None)
        store.save(2, 0, None)
        store.clear()
        assert not store.path.exists()
        assert not fallback_path(store.path).exists()
