"""End-to-end integration: the full pipeline on one platform.

These tests chain the stages the way the paper's study does: platform ->
campaigns -> analyses, and check cross-stage consistency properties that
unit tests cannot see.
"""

import numpy as np
import pytest

from repro.core.congestion import CongestionDetector
from repro.core.localization import localize_congestion
from repro.core.routechange import analyze_timeline, change_events
from repro.core.rttstats import best_path_id, path_percentiles
from repro.net.ip import IPVersion


class TestRoutingPipeline:
    def test_observed_changes_reflect_schedule(self, platform, longterm):
        """Timelines of pairs whose routing schedule has no changes should
        themselves show few observed path changes (artifact noise only)."""
        quiet = noisy = 0
        for src, dst in platform.server_pairs(dual_stack_only=True):
            epochs = platform.epochs(src, dst, IPVersion.V4)
            if len(epochs) != 1:
                continue
            timeline = longterm.timeline(src.server_id, dst.server_id, IPVersion.V4)
            stats = analyze_timeline(timeline)
            if stats.changes <= 4:
                quiet += 1
            else:
                noisy += 1
        if quiet + noisy == 0:
            pytest.skip("no single-epoch pairs at this seed")
        assert quiet / (quiet + noisy) > 0.7

    def test_best_path_is_usually_primary(self, platform, longterm):
        """The RTT-best observed path usually corresponds to the
        steady-state (candidate 0) route."""
        agree = total = 0
        for src, dst in platform.server_pairs(dual_stack_only=True):
            timeline = longterm.timeline(src.server_id, dst.server_id, IPVersion.V4)
            best = best_path_id(timeline)
            if best is None or len(timeline.observed_paths()) < 2:
                continue
            mask = timeline.usable_mask() & (timeline.path_id == best)
            if not mask.any():
                continue
            candidates = timeline.true_candidate[mask]
            total += 1
            if np.median(candidates) == 0:
                agree += 1
        if total == 0:
            pytest.skip("no multi-path timelines at this seed")
        assert agree / total > 0.6

    def test_change_events_carry_real_paths(self, longterm):
        for timeline in list(longterm.timelines.values())[:50]:
            for event in change_events(timeline)[:5]:
                assert event.old_path != event.new_path
                assert event.distance >= 1


class TestRTTConsistency:
    def test_percentiles_ordered(self, longterm):
        for timeline in list(longterm.timelines.values())[:100]:
            p10 = path_percentiles(timeline, 10.0)
            p90 = path_percentiles(timeline, 90.0)
            for path_id in p10:
                assert p10[path_id] <= p90[path_id] + 1e-6

    def test_rtts_exceed_speed_of_light(self, platform, longterm):
        """No measured RTT beats the free-space bound between endpoints."""
        from repro.net.geo import crtt_ms

        for src, dst in platform.server_pairs(dual_stack_only=True)[:20]:
            timeline = longterm.timeline(src.server_id, dst.server_id, IPVersion.V4)
            usable = timeline.usable_mask() & np.isfinite(timeline.rtt_ms)
            if not usable.any():
                continue
            bound = crtt_ms(src.city, dst.city)
            assert float(timeline.rtt_ms[usable].min()) >= bound * 0.99


class TestCongestionPipeline:
    def test_flagged_pairs_cross_congested_keys(self, platform, ping_dataset):
        """Most ping-flagged pairs actually cross a congested segment
        (the rest are routing-change artifacts the FFT gate lets through
        rarely)."""
        detector = CongestionDetector()
        servers = {s.server_id: s for s in platform.measurement_servers()}
        congested = set(platform.congestion.congested_keys())
        flagged = correct = 0
        for (src_id, dst_id, version), timeline in ping_dataset.timelines.items():
            if not detector.assess(timeline).congested:
                continue
            flagged += 1
            realization = platform.realization(
                servers[src_id], servers[dst_id], version, 0
            )
            if realization and set(realization.segment_keys) & congested:
                correct += 1
        if flagged == 0:
            pytest.skip("no congested pairs at this seed")
        assert correct / flagged > 0.8

    def test_localization_agrees_with_detector(self, trace_dataset):
        """Localization only fires when the end-to-end diurnal persists."""
        for entry in trace_dataset.entries.values():
            if not entry.static_path:
                continue
            result = localize_congestion(entry)
            if result.located:
                assert result.end_to_end_diurnal


class TestDualStackConsistency:
    def test_shared_congestion_visible_on_both_protocols(self, platform):
        """When v4 and v6 primary paths share a congested segment, both
        protocols see the diurnal lift at the same hours."""
        congested = set(platform.congestion.congested_keys())
        for src, dst in platform.server_pairs(dual_stack_only=True):
            v4 = platform.realization(src, dst, IPVersion.V4, 0)
            v6 = platform.realization(src, dst, IPVersion.V6, 0)
            if v4 is None or v6 is None:
                continue
            shared = set(v4.segment_keys) & set(v6.segment_keys) & congested
            if not shared:
                continue
            times = np.arange(0.0, 48.0, 0.25)
            lift_v4 = platform.congestion.path_series(v4.segment_keys, times)
            lift_v6 = platform.congestion.path_series(v6.segment_keys, times)
            if lift_v4.max() == 0:
                continue
            # The shared component peaks at the same time bins.
            assert np.argmax(lift_v4) == np.argmax(lift_v6) or lift_v6.max() > 0
            return
        pytest.skip("no dual-stack pair shares a congested segment at this seed")
