"""Cross-module property-based tests (hypothesis).

Invariants that hold for *any* input, not just the seeded scenarios:
observed-AS-path reconstruction, valley-free candidate generation over
random relationship tables, and congestion-event arithmetic.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aspath import has_unknown
from repro.measurement.congestionmodel import CongestionEvent
from repro.measurement.realization import UNKNOWN_ASN, observed_as_path
from repro.net.asn import ASRelationship, RelationshipTable
from repro.routing.policy import RouteClass, export_allowed, is_valley_free

_asn = st.integers(min_value=100, max_value=110)
_mapped_hops = st.lists(st.one_of(st.none(), _asn), max_size=16)


class TestObservedASPathProperties:
    @settings(max_examples=200, deadline=None)
    @given(_asn, _mapped_hops)
    def test_source_first_and_no_consecutive_duplicates(self, src, hops):
        path = observed_as_path(src, hops)
        assert path[0] == src
        for a, b in zip(path, path[1:]):
            assert a != b

    @settings(max_examples=200, deadline=None)
    @given(_asn, _mapped_hops)
    def test_no_longer_than_input(self, src, hops):
        path = observed_as_path(src, hops)
        assert len(path) <= len(hops) + 1

    @settings(max_examples=200, deadline=None)
    @given(_asn, st.lists(_asn, max_size=16))
    def test_fully_mapped_paths_have_no_unknowns(self, src, hops):
        path = observed_as_path(src, hops)
        assert not has_unknown(path)

    @settings(max_examples=200, deadline=None)
    @given(_asn, _mapped_hops)
    def test_idempotent_under_reapplication(self, src, hops):
        """Feeding a reconstructed path back in reproduces it."""
        path = observed_as_path(src, hops)
        refed = observed_as_path(
            src, [None if asn == UNKNOWN_ASN else asn for asn in path[1:]]
        )
        assert refed == path

    @settings(max_examples=200, deadline=None)
    @given(_asn, _mapped_hops)
    def test_known_asns_preserved_in_order(self, src, hops):
        """The subsequence of known ASNs survives (dedup aside)."""
        path = observed_as_path(src, hops)
        known_in = []
        for asn in [src] + list(hops):
            if asn is not None and (not known_in or known_in[-1] != asn):
                known_in.append(asn)
        known_out = [asn for asn in path if asn != UNKNOWN_ASN]
        # Every output ASN appears in the input subsequence, in order.
        iterator = iter(known_in)
        assert all(asn in iterator for asn in known_out)


def _random_relationships(draw):
    """A random relationship table over ASNs 0..5 (connected-ish)."""
    table = RelationshipTable()
    kinds = [ASRelationship.CUSTOMER, ASRelationship.PROVIDER, ASRelationship.PEER]
    for a in range(6):
        for b in range(a + 1, 6):
            choice = draw(st.integers(min_value=0, max_value=3))
            if choice < 3:
                table.add(a, b, kinds[choice])
    return table


class TestPolicyProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_export_rules_prevent_valleys(self, data):
        """A two-edge path accepted hop-by-hop by the export rules is
        valley-free -- the inductive step behind candidate generation."""
        table = _random_relationships(data.draw)
        for first in range(6):
            for middle in range(6):
                for last in range(6):
                    if len({first, middle, last}) != 3:
                        continue
                    rel_fm = table.get(middle, first)
                    rel_ml = table.get(middle, last)
                    if rel_fm is None or rel_ml is None:
                        continue
                    # middle learned a SELF route from itself toward last?
                    # Model: last originates; middle's route class toward
                    # last, then export toward first.
                    if rel_ml is ASRelationship.CUSTOMER:
                        middle_class = RouteClass.CUSTOMER
                    elif rel_ml is ASRelationship.PEER:
                        middle_class = RouteClass.PEER
                    else:
                        middle_class = RouteClass.PROVIDER
                    if export_allowed(table, middle, first, middle_class):
                        verdict = is_valley_free(table, (first, middle, last))
                        assert verdict is True, (
                            f"{first}-{middle}-{last}: {rel_fm}, {rel_ml}"
                        )


class TestCongestionEventProperties:
    _event_args = st.tuples(
        st.floats(min_value=1.0, max_value=100.0),    # amplitude
        st.floats(min_value=0.0, max_value=500.0),    # start
        st.floats(min_value=1.0, max_value=500.0),    # length
        st.floats(min_value=0.0, max_value=24.0),     # peak hour
        st.floats(min_value=1.0, max_value=12.0),     # width
        st.floats(min_value=-180.0, max_value=180.0),  # longitude
    )

    @settings(max_examples=150, deadline=None)
    @given(_event_args)
    def test_contribution_bounded_and_nonnegative(self, args):
        amplitude, start, length, peak, width, longitude = args
        event = CongestionEvent(
            amplitude_ms=amplitude, start_hour=start, end_hour=start + length,
            peak_local_hour=peak, width_hours=width, longitude=longitude,
        )
        times = np.linspace(0.0, start + length + 48.0, 500)
        contribution = event.contribution(times)
        assert (contribution >= 0.0).all()
        assert contribution.max() <= amplitude + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(_event_args)
    def test_zero_outside_window(self, args):
        amplitude, start, length, peak, width, longitude = args
        event = CongestionEvent(
            amplitude_ms=amplitude, start_hour=start, end_hour=start + length,
            peak_local_hour=peak, width_hours=width, longitude=longitude,
        )
        after = np.linspace(start + length + 1e-6, start + length + 24.0, 50)
        assert (event.contribution(after) == 0.0).all()
        if start > 1e-3:
            before = np.linspace(max(0.0, start - 24.0), start * (1 - 1e-9), 50)
            assert (event.contribution(before) == 0.0).all()
