"""Reproducibility: one seed, one dataset, bit for bit."""

import numpy as np

from repro.datasets.longterm import LongTermConfig, build_longterm_dataset
from repro.datasets.shortterm import ShortTermConfig, build_shortterm_ping_dataset
from repro.measurement.platform import MeasurementPlatform, PlatformConfig
from repro.net.ip import IPVersion


def _make_platform():
    return MeasurementPlatform(
        PlatformConfig(seed=33, cluster_count=6, duration_hours=24.0 * 40)
    )


class TestBitwiseReproducibility:
    def test_longterm_datasets_identical(self):
        first = build_longterm_dataset(_make_platform(), LongTermConfig(days=40))
        second = build_longterm_dataset(_make_platform(), LongTermConfig(days=40))
        assert set(first.timelines) == set(second.timelines)
        for key, timeline in first.timelines.items():
            other = second.timelines[key]
            assert np.array_equal(timeline.rtt_ms, other.rtt_ms, equal_nan=True)
            assert np.array_equal(timeline.outcome, other.outcome)
            assert np.array_equal(timeline.path_id, other.path_id)
            assert timeline.paths == other.paths

    def test_ping_datasets_identical(self):
        first = build_shortterm_ping_dataset(
            _make_platform(), ShortTermConfig(ping_days=3.0)
        )
        second = build_shortterm_ping_dataset(
            _make_platform(), ShortTermConfig(ping_days=3.0)
        )
        for key, timeline in first.timelines.items():
            assert np.array_equal(
                timeline.rtt_ms, second.timelines[key].rtt_ms, equal_nan=True
            )

    def test_congestion_schedule_identical(self):
        first = _make_platform()
        second = _make_platform()
        assert first.congested_segment_keys() == second.congested_segment_keys()
        for key in first.congested_segment_keys():
            assert first.congestion.events[key] == second.congestion.events[key]

    def test_analysis_results_identical(self):
        from repro.core.routechange import analyze_timeline

        first = build_longterm_dataset(_make_platform(), LongTermConfig(days=40))
        second = build_longterm_dataset(_make_platform(), LongTermConfig(days=40))
        for key in first.timelines:
            stats_a = analyze_timeline(first.timelines[key])
            stats_b = analyze_timeline(second.timelines[key])
            assert stats_a.changes == stats_b.changes
            assert stats_a.unique_paths == stats_b.unique_paths
            assert stats_a.prevalence == stats_b.prevalence

    def test_rng_streams_do_not_collide(self):
        platform = _make_platform()
        pairs = platform.server_pairs()[:3]
        streams = [
            platform.rng("longterm", src.server_id, dst.server_id, 4, 0).random(8)
            for src, dst in pairs
        ]
        for index, first in enumerate(streams):
            for second in streams[index + 1 :]:
                assert not np.allclose(first, second)

    def test_epochs_independent_of_query_order(self):
        first = _make_platform()
        second = _make_platform()
        pairs = first.server_pairs()
        forward = [first.epochs(s, d, IPVersion.V4) for s, d in pairs]
        backward = [second.epochs(s, d, IPVersion.V4) for s, d in reversed(pairs)]
        assert forward == list(reversed(backward))
