"""Calibration bands: the session-scale dataset keeps the paper's shapes.

The bands here are deliberately loose (the session platform is tiny and a
single seed is lumpy); the benchmarks check the same quantities at the
default/large scales with tighter expectations.
"""

import numpy as np
import pytest

from repro.core.dualstack import paired_rtt_differences
from repro.core.routechange import analyze_timeline
from repro.core.summary import dataset_summary
from repro.net.ip import IPVersion


class TestTable1Bands:
    def test_v4(self, longterm):
        summary = dataset_summary(longterm)[IPVersion.V4]
        assert 0.6 <= summary.reached_fraction <= 0.9       # paper: 0.75
        assert 0.45 <= summary.complete_as_fraction <= 0.9  # paper: 0.703
        assert summary.missing_ip_fraction <= 0.5           # paper: 0.281
        assert summary.loop_fraction <= 0.12                # paper: 0.0216

    def test_v6_loops_exceed_v4(self, longterm):
        summaries = dataset_summary(longterm)
        # IPv6 stays on classic traceroute, so its loop rate is at least
        # comparable to IPv4's (which switches to Paris mid-study).
        assert summaries[IPVersion.V6].loop_fraction >= (
            0.5 * summaries[IPVersion.V4].loop_fraction
        )


class TestRoutingShapes:
    def test_few_paths_per_timeline(self, longterm):
        counts = [
            analyze_timeline(timeline).unique_paths
            for timeline in longterm.by_version(IPVersion.V4)
        ]
        assert np.percentile(counts, 80) <= 8  # paper: 5

    def test_one_dominant_path(self, longterm):
        prevalences = [
            analyze_timeline(timeline).popular_prevalence
            for timeline in longterm.by_version(IPVersion.V4)
        ]
        dominant = np.mean([p >= 0.5 for p in prevalences])
        assert dominant >= 0.7  # paper: 0.8 of timelines


class TestDualStackShapes:
    def test_most_paired_diffs_small(self, longterm):
        comparison = paired_rtt_differences(longterm)
        if comparison.paired_samples == 0:
            pytest.skip("no dual-stack pairs at this seed")
        assert comparison.within_band_fraction(10.0) >= 0.4  # paper: ~0.5

    def test_saving_fractions_minority(self, longterm):
        comparison = paired_rtt_differences(longterm)
        assert comparison.v6_saves_fraction(50.0) <= 0.25
        assert comparison.v4_saves_fraction(50.0) <= 0.35
