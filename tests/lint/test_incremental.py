"""Incremental runner semantics: cache keys, crash handling, baselines.

The cache contract is strict: warm results must be byte-identical to
cold ones, any input that could change a per-file verdict (source bytes,
rule selection, rule *versions*, the allowlist) must miss, and a crash
-- in a file or in a rule -- degrades to one structured finding instead
of aborting the run.
"""

import json

import pytest

from repro.lint import lint_paths, report_as_dict
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cache import LintCache
from repro.lint.registry import get_rule

_DIRTY = "import numpy as np\nrng = np.random.default_rng()\n"


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "tree" / "repro" / "core"
    root.mkdir(parents=True)
    (root / "bad.py").write_text(_DIRTY)
    (root / "ok.py").write_text("def double(x: int) -> int:\n    return 2 * x\n")
    return tmp_path / "tree"


def _lint(tree, cache, **kwargs):
    kwargs.setdefault("enforce_allowlist", False)
    return lint_paths([tree], cache=cache, **kwargs)


# -- cache hits, misses, and invalidation ----------------------------------


def test_warm_run_is_byte_identical_and_fully_cached(tree, tmp_path):
    cache = LintCache(tmp_path / "cache")
    cold = report_as_dict(_lint(tree, cache))
    assert cache.misses == 2 and cache.hits == 0

    warm_cache = LintCache(tmp_path / "cache")
    warm = report_as_dict(_lint(tree, warm_cache))
    assert warm_cache.hits == 2 and warm_cache.misses == 0
    assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)


def test_source_edit_invalidates_only_that_file(tree, tmp_path):
    cache = LintCache(tmp_path / "cache")
    _lint(tree, cache)
    (tree / "repro" / "core" / "ok.py").write_text("def triple(x: int) -> int:\n    return 3 * x\n")
    second = LintCache(tmp_path / "cache")
    _lint(tree, second)
    assert second.hits == 1 and second.misses == 1


def test_rule_version_bump_invalidates_cache(tree, tmp_path, monkeypatch):
    cache = LintCache(tmp_path / "cache")
    _lint(tree, cache)
    # A rule version bump means the rule's findings may differ even for
    # identical sources: every entry keyed under the old version is dead.
    monkeypatch.setattr(get_rule("DET001"), "version", 99)
    bumped = LintCache(tmp_path / "cache")
    report = _lint(tree, bumped)
    assert bumped.hits == 0 and bumped.misses == 2
    assert [finding.rule for finding in report.findings] == ["DET001"]


def test_rule_selection_changes_cache_key(tree, tmp_path):
    cache = LintCache(tmp_path / "cache")
    _lint(tree, cache, select=["DET001"])
    other = LintCache(tmp_path / "cache")
    _lint(tree, other, select=["FRK001"])
    assert other.hits == 0 and other.misses == 2


def test_corrupt_cache_entry_is_a_miss(tree, tmp_path):
    cache = LintCache(tmp_path / "cache")
    cold = report_as_dict(_lint(tree, cache))
    for entry in (tmp_path / "cache").rglob("*.json"):
        entry.write_text("{not json")
    recovered = LintCache(tmp_path / "cache")
    warm = report_as_dict(_lint(tree, recovered))
    assert recovered.hits == 0 and recovered.misses == 2
    assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)


# -- crash handling: keep linting ------------------------------------------


def test_syntax_error_is_one_finding_and_run_continues(tree):
    (tree / "repro" / "core" / "broken.py").write_text("def oops(:\n")
    report = lint_paths([tree], enforce_allowlist=False)
    by_rule = {}
    for finding in report.findings:
        by_rule.setdefault(finding.rule, []).append(finding)
    assert len(by_rule["LNT001"]) == 1
    assert "parse" in by_rule["LNT001"][0].message
    # The other files were still linted.
    assert len(by_rule["DET001"]) == 1
    assert report.files == 3


def test_undecodable_file_is_one_finding_and_run_continues(tree):
    (tree / "repro" / "core" / "binary.py").write_bytes(b"\xff\xfe\x00junk\x80")
    report = lint_paths([tree], enforce_allowlist=False)
    lnt = [finding for finding in report.findings if finding.rule == "LNT001"]
    assert len(lnt) == 1
    assert "read" in lnt[0].message
    assert any(finding.rule == "DET001" for finding in report.findings)


def test_crashing_rule_degrades_to_lnt002(tree, monkeypatch):
    rule = get_rule("DET001")
    monkeypatch.setattr(
        type(rule), "check", lambda self, ctx: (_ for _ in ()).throw(RuntimeError("boom"))
    )
    report = lint_paths([tree], enforce_allowlist=False)
    # One crash finding per file the rule died on; everything else ran.
    assert {finding.rule for finding in report.findings} == {"LNT002"}
    assert len(report.findings) == 2
    crash = report.findings[0]
    assert "DET001" in crash.message and "boom" in crash.message
    assert "unchecked" in crash.message


# -- baselines: adopt now, expire when fixed -------------------------------


def test_baseline_suppresses_known_findings(tree, tmp_path):
    baseline = tmp_path / "baseline.json"
    report = lint_paths([tree], enforce_allowlist=False)
    assert write_baseline(baseline, report) == 1

    entries = load_baseline(baseline)
    fresh = lint_paths([tree], enforce_allowlist=False)
    kept, baselined, stale = apply_baseline(fresh.findings, entries)
    assert kept == []
    assert baselined == 1
    assert stale == []


def test_baseline_survives_line_shifts_but_expires_on_fix(tree, tmp_path):
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, lint_paths([tree], enforce_allowlist=False))
    entries = load_baseline(baseline)

    bad = tree / "repro" / "core" / "bad.py"
    bad.write_text("# moved down\n\n" + _DIRTY)  # same finding, new line
    shifted = lint_paths([tree], enforce_allowlist=False)
    kept, baselined, stale = apply_baseline(shifted.findings, entries)
    assert kept == [] and baselined == 1 and stale == []

    bad.write_text("import numpy as np\nrng = np.random.default_rng(seed)\n")
    fixed = lint_paths([tree], enforce_allowlist=False)
    kept, baselined, stale = apply_baseline(fixed.findings, entries)
    assert kept == [] and baselined == 0
    assert len(stale) == 1 and stale[0]["rule"] == "DET001"


def test_malformed_baseline_raises(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        load_baseline(baseline)
