"""FRK001 and CCH001 fixtures: positive, negative, and suppressed snippets."""

from repro.lint import lint_source


def codes(report):
    return [finding.rule for finding in report.findings]


# -- FRK001 -----------------------------------------------------------------

_FORK_MUTATION = (
    "from repro.datasets.parallel import fork_map\n"
    "RESULTS = []\n"
    "def worker(item):\n"
    "    RESULTS.append(item * 2)\n"
    "    return item\n"
    "def build(items):\n"
    "    return fork_map(worker, items, jobs=4)\n"
)


def test_frk001_flags_module_list_append_in_worker():
    report = lint_source(_FORK_MUTATION, path="src/repro/datasets/example.py", select=["FRK001"])
    assert codes(report) == ["FRK001"]
    assert "RESULTS" in report.findings[0].message


def test_frk001_flags_global_rebinding_and_subscript_store():
    report = lint_source(
        "from repro.datasets.parallel import fork_map\n"
        "TOTAL = 0\n"
        "CACHE = {}\n"
        "def worker(item):\n"
        "    global TOTAL\n"
        "    TOTAL += 1\n"
        "    CACHE[item] = item\n"
        "    return item\n"
        "def build(items):\n"
        "    return fork_map(worker, items)\n",
        path="src/repro/datasets/example.py",
        select=["FRK001"],
    )
    # One finding at the `global` declaration (covering TOTAL's rebinds)
    # plus one at the module-dict subscript store.
    assert codes(report) == ["FRK001", "FRK001"]
    assert "global TOTAL" in report.findings[0].message
    assert "CACHE" in report.findings[1].message


def test_frk001_flags_lambda_workers():
    report = lint_source(
        "from repro.datasets.parallel import fork_map\n"
        "ACC = []\n"
        "def build(items):\n"
        "    return fork_map(lambda item: ACC.append(item), items)\n",
        path="src/repro/datasets/example.py",
        select=["FRK001"],
    )
    assert codes(report) == ["FRK001"]


def test_frk001_clean_worker_returning_results():
    report = lint_source(
        "from repro.datasets.parallel import fork_map\n"
        "from repro.obs import metrics as obs_metrics\n"
        "def build(platform, items):\n"
        "    def worker(item):\n"
        "        obs_metrics.get_registry().counter('built').inc()\n"
        "        local = []\n"
        "        local.append(item)\n"
        "        return local\n"
        "    return fork_map(worker, items, jobs=4)\n",
        path="src/repro/datasets/example.py",
        select=["FRK001"],
    )
    assert codes(report) == []


def test_frk001_mutation_outside_worker_is_clean():
    report = lint_source(
        "from repro.datasets.parallel import fork_map\n"
        "RESULTS = []\n"
        "def worker(item):\n"
        "    return item\n"
        "def build(items):\n"
        "    for result in fork_map(worker, items):\n"
        "        RESULTS.append(result)\n"
        "    return RESULTS\n",
        path="src/repro/datasets/example.py",
        select=["FRK001"],
    )
    assert codes(report) == []


def test_frk001_flags_process_target_keyword():
    report = lint_source(
        "import multiprocessing\n"
        "SEEN = []\n"
        "def _worker(queue):\n"
        "    SEEN.append(1)\n"
        "    queue.put('done')\n"
        "def spawn(queue):\n"
        "    context = multiprocessing.get_context('fork')\n"
        "    return context.Process(target=_worker, args=(queue,), daemon=True)\n",
        path="src/repro/stream/example.py",
        select=["FRK001"],
    )
    assert codes(report) == ["FRK001"]
    assert "SEEN" in report.findings[0].message
    assert "Process worker" in report.findings[0].message


def test_frk001_clean_process_worker_with_registry_delta():
    report = lint_source(
        "import multiprocessing\n"
        "from repro.obs import metrics as obs_metrics\n"
        "def _worker(source, queue):\n"
        "    registry = obs_metrics.get_registry()\n"
        "    baseline = registry.snapshot()\n"
        "    queue.put((source, registry.delta_since(baseline)))\n"
        "def spawn(source, queue):\n"
        "    context = multiprocessing.get_context('fork')\n"
        "    return context.Process(target=_worker, args=(source, queue))\n",
        path="src/repro/stream/example.py",
        select=["FRK001"],
    )
    assert codes(report) == []


def test_frk001_suppressed():
    source = _FORK_MUTATION.replace(
        "    RESULTS.append(item * 2)\n",
        "    RESULTS.append(item * 2)  # repro: noqa[FRK001]\n",
    )
    report = lint_source(source, path="src/repro/datasets/example.py", select=["FRK001"])
    assert codes(report) == []
    assert report.suppressed == 1


# -- CCH001 -----------------------------------------------------------------


def test_cch001_flags_bare_class_attribute():
    report = lint_source(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class BuildConfig:\n"
        "    days: int = 16\n"
        "    retries = 3\n",
        path="src/repro/datasets/example.py",
        select=["CCH001"],
    )
    assert codes(report) == ["CCH001"]
    assert "retries" in report.findings[0].message


def test_cch001_flags_classvar_and_post_init_attribute():
    report = lint_source(
        "from dataclasses import dataclass\n"
        "from typing import ClassVar\n"
        "@dataclass\n"
        "class BuildConfig:\n"
        "    days: int = 16\n"
        "    mode: ClassVar[str] = 'fast'\n"
        "    def __post_init__(self):\n"
        "        self.window = self.days * 24\n",
        path="src/repro/datasets/example.py",
        select=["CCH001"],
    )
    assert codes(report) == ["CCH001", "CCH001"]


def test_cch001_clean_config_and_private_derived_state():
    report = lint_source(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class BuildConfig:\n"
        "    days: int = 16\n"
        "    def __post_init__(self):\n"
        "        self._window = self.days * 24\n"
        "    def validate(self):\n"
        "        self.days = int(self.days)\n",
        path="src/repro/datasets/example.py",
        select=["CCH001"],
    )
    assert codes(report) == []


def test_cch001_ignores_non_config_dataclasses_and_plain_classes():
    report = lint_source(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Record:\n"
        "    tag = 'not-a-config'\n"
        "class HelperConfig:\n"
        "    tag = 'not-a-dataclass'\n",
        path="src/repro/datasets/example.py",
        select=["CCH001"],
    )
    assert codes(report) == []


def test_cch001_suppressed():
    report = lint_source(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class BuildConfig:\n"
        "    days: int = 16\n"
        "    retries = 3  # repro: noqa[CCH001]\n",
        path="src/repro/datasets/example.py",
        select=["CCH001"],
    )
    assert codes(report) == []
    assert report.suppressed == 1


def test_frk001_flags_thread_target_global_rebinding():
    report = lint_source(
        "import threading\n"
        "COUNT = 0\n"
        "def worker():\n"
        "    global COUNT\n"
        "    COUNT += 1\n"
        "def start():\n"
        "    thread = threading.Thread(target=worker)\n"
        "    thread.start()\n"
        "    return thread\n",
        path="src/repro/obs/example.py",
        select=["FRK001"],
    )
    assert codes(report) == ["FRK001"]
    # Threads share memory, so the message is about racing readers, not
    # about state evaporating in a child process.
    assert "races every reader" in report.findings[0].message


def test_frk001_resolves_thread_target_self_method():
    report = lint_source(
        "import threading\n"
        "MODE = 'idle'\n"
        "class Sampler:\n"
        "    def _loop(self):\n"
        "        global MODE\n"
        "        MODE = 'running'\n"
        "    def start(self):\n"
        "        self._thread = threading.Thread(target=self._loop, daemon=True)\n"
        "        self._thread.start()\n",
        path="src/repro/obs/example.py",
        select=["FRK001"],
    )
    assert codes(report) == ["FRK001"]
    assert "MODE" in report.findings[0].message


def test_frk001_thread_container_mutation_is_clean():
    # In-place container mutation is visible across threads (one address
    # space); only the fork-based workers lose it.  Thread workers are
    # checked solely for unsynchronized global rebinding.
    report = lint_source(
        "import threading\n"
        "SAMPLES = []\n"
        "def worker():\n"
        "    SAMPLES.append(1)\n"
        "def start():\n"
        "    threading.Thread(target=worker).start()\n",
        path="src/repro/obs/example.py",
        select=["FRK001"],
    )
    assert codes(report) == []
