"""Machine-readable output contracts: JSON report schema and SARIF.

Golden-shape assertions pin the documents CI and code-scanning parse;
the SARIF document additionally validates against a vendored subset of
the OASIS 2.1.0 schema (``data/sarif-2.1.0-subset.schema.json``) so a
drifting emitter fails offline, without the upstream 14k-line schema or
network access.
"""

import json
from pathlib import Path

import pytest

from repro.lint import (
    REPORT_SCHEMA,
    all_rules,
    lint_source,
    render_json,
    report_as_dict,
)
from repro.lint.sarif import SARIF_VERSION, render_sarif, sarif_as_dict

DATA = Path(__file__).resolve().parent / "data"

_DIRTY = (
    "import numpy as np\n"
    "import time\n"
    "rng = np.random.default_rng()\n"
    "t0 = time.time()\n"
)


def _report():
    return lint_source(_DIRTY, path="src/repro/core/example.py")


# -- JSON report -----------------------------------------------------------


def test_json_report_golden_shape():
    payload = report_as_dict(_report())
    assert payload["schema"] == REPORT_SCHEMA == 2
    assert payload["tool"] == "repro.lint"
    assert payload["files"] == 1
    assert sorted(payload) == [
        "baseline_stale", "files", "findings", "schema", "summary", "tool",
    ]
    assert sorted(payload["summary"]) == [
        "baselined", "by_rule", "errors", "findings", "suppressed", "warnings",
    ]
    assert payload["summary"]["by_rule"] == {"DET001": 1, "DET002": 1}
    for finding in payload["findings"]:
        assert sorted(finding) == [
            "col", "line", "message", "path", "rule", "severity",
        ]


def test_json_report_round_trips():
    report = _report()
    first = render_json(report)
    decoded = json.loads(first)
    assert json.dumps(decoded, indent=2) + "\n" == first
    # Rendering is a pure function of the report: stable across calls.
    assert render_json(report) == first


# -- SARIF -----------------------------------------------------------------


def test_sarif_golden_shape():
    doc = sarif_as_dict(_report(), all_rules())
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert {"DET001", "DET010", "FRK010", "SCH010"} <= set(rule_ids)
    assert [r["ruleId"] for r in run["results"]] == ["DET001", "DET002"]
    region = run["results"][0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_sarif_round_trips():
    report = _report()
    rendered = render_sarif(report, all_rules())
    assert json.loads(rendered) == sarif_as_dict(report, all_rules())


def test_sarif_validates_against_vendored_schema():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads((DATA / "sarif-2.1.0-subset.schema.json").read_text())
    jsonschema.Draft7Validator.check_schema(schema)
    validator = jsonschema.Draft7Validator(schema)

    doc = sarif_as_dict(_report(), all_rules())
    errors = sorted(validator.iter_errors(doc), key=str)
    assert errors == [], "\n".join(str(e) for e in errors)


def test_sarif_empty_report_validates_too():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads((DATA / "sarif-2.1.0-subset.schema.json").read_text())
    clean = lint_source("x = 1\n", path="src/repro/core/clean.py")
    doc = sarif_as_dict(clean, all_rules())
    assert doc["runs"][0]["results"] == []
    jsonschema.validate(doc, schema)
