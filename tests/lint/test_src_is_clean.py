"""Meta-test: the shipped tree stays lint-clean.

This is the tier-1 regression guard behind `python -m repro.lint src`:
a PR that reintroduces an unseeded RNG, a wall-clock read, a fork-unsafe
mutation, or an undocumented suppression fails here, not in review.
"""

from pathlib import Path

from repro.lint import lint_paths, render_human

SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_has_no_findings():
    report = lint_paths([SRC], enforce_allowlist=True)
    assert report.files > 50  # the whole package was scanned, not a subset
    assert report.findings == [], "\n" + render_human(report)
    assert report.exit_code(strict=True) == 0


def test_src_suppressions_match_allowlist_inventory():
    # Exactly the documented suppressions fire -- no drift in either
    # direction between noqa comments and the allowlist (DET002 in
    # core/ownership.py, DET010 in measurement/fastseed.py).
    report = lint_paths([SRC], enforce_allowlist=True)
    assert report.suppressed == 2
