"""CLI surface: exit codes, JSON mode, rule listing, bad input handling."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd or REPO,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )


@pytest.fixture(scope="module")
def dirty_tree(tmp_path_factory):
    root = tmp_path_factory.mktemp("dirty") / "repro" / "core"
    root.mkdir(parents=True)
    (root / "bad.py").write_text(
        "import numpy as np\nrng = np.random.default_rng()\n"
    )
    return root


def test_clean_src_exits_zero():
    result = run_cli(str(SRC), "--strict")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 finding(s)" in result.stdout


def test_lint_runs_without_numpy(tmp_path):
    # CI's lint job installs only ruff: `python -m repro.lint` must not
    # drag in the numpy-backed simulation stack via the package root.
    blocker = (
        "import runpy, sys\n"
        "class BlockNumpy:\n"
        "    def find_spec(self, name, path=None, target=None):\n"
        "        if name == 'numpy' or name.startswith('numpy.'):\n"
        "            raise ModuleNotFoundError('numpy blocked')\n"
        "        return None\n"
        "sys.meta_path.insert(0, BlockNumpy())\n"
        "sys.argv = ['repro.lint', sys.argv[1], '--strict']\n"
        "runpy.run_module('repro.lint', run_name='__main__')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", blocker, str(SRC)],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 finding(s)" in result.stdout


def test_dirty_tree_exits_one_with_human_finding(dirty_tree):
    result = run_cli(str(dirty_tree))
    assert result.returncode == 1
    assert "DET001" in result.stdout
    assert "bad.py:2" in result.stdout


def test_json_mode_emits_schema_document(dirty_tree):
    result = run_cli(str(dirty_tree), "--json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["schema"] == 2
    assert payload["summary"]["by_rule"] == {"DET001": 1}


def test_select_filter_via_cli(dirty_tree):
    result = run_cli(str(dirty_tree), "--select", "OBS001")
    assert result.returncode == 0
    assert "0 finding(s)" in result.stdout


def test_list_rules_describes_every_rule():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for code in ("DET001", "DET002", "FRK001", "OBS001", "API001", "CCH001", "LNT000"):
        assert code in result.stdout


def test_unknown_rule_is_usage_error():
    result = run_cli(str(SRC), "--select", "NOPE99")
    assert result.returncode == 2
    assert "unknown rule" in result.stderr


def test_missing_path_is_usage_error():
    result = run_cli("does-not-exist.txt")
    assert result.returncode == 2


def test_explain_prints_rules_md_entry():
    result = run_cli("--explain", "DET010")
    assert result.returncode == 0
    assert "interprocedural-seed-taint" in result.stdout
    assert "build_platform(42)" in result.stdout  # the failing example


def test_explain_unknown_rule_is_usage_error():
    result = run_cli("--explain", "NOPE99")
    assert result.returncode == 2


def test_sarif_format_emits_valid_document(dirty_tree):
    result = run_cli(str(dirty_tree), "--format", "sarif")
    assert result.returncode == 1  # exit code still reflects findings
    doc = json.loads(result.stdout)
    assert doc["version"] == "2.1.0"
    results = doc["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["DET001"]
    assert results[0]["locations"][0]["physicalLocation"]["region"]["startLine"] == 2


def test_baseline_write_then_suppress_roundtrip(dirty_tree, tmp_path):
    baseline = tmp_path / "lint-baseline.json"
    written = run_cli(str(dirty_tree), "--write-baseline", str(baseline))
    assert written.returncode == 0, written.stdout + written.stderr
    result = run_cli(str(dirty_tree), "--baseline", str(baseline), "--json")
    assert result.returncode == 0
    payload = json.loads(result.stdout)
    assert payload["summary"]["findings"] == 0
    assert payload["summary"]["baselined"] == 1
    assert payload["baseline_stale"] == []


def test_warm_cache_run_matches_cold_byte_for_byte(dirty_tree, tmp_path):
    cache_dir = str(tmp_path / "lintcache")
    cold = run_cli(str(dirty_tree), "--json", "--cache-dir", cache_dir)
    warm = run_cli(str(dirty_tree), "--json", "--cache-dir", cache_dir)
    assert cold.returncode == warm.returncode == 1
    assert cold.stdout == warm.stdout
