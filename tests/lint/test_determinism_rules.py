"""DET001/DET002 fixtures: positive, negative, and suppressed snippets."""

from repro.lint import lint_source


def codes(report):
    return [finding.rule for finding in report.findings]


# -- DET001 -----------------------------------------------------------------


def test_det001_flags_unseeded_default_rng():
    report = lint_source(
        "import numpy as np\n"
        "rng = np.random.default_rng()\n",
        path="src/repro/core/example.py",
        select=["DET001"],
    )
    assert codes(report) == ["DET001"]
    assert report.findings[0].line == 2


def test_det001_flags_magic_literal_seed():
    report = lint_source(
        "import numpy as np\n"
        "rng = np.random.default_rng(42)\n",
        path="src/repro/core/example.py",
        select=["DET001"],
    )
    assert codes(report) == ["DET001"]
    assert "repro.seeds" in report.findings[0].message


def test_det001_flags_magic_literal_seed_keyword():
    report = lint_source(
        "import numpy as np\n"
        "rng = np.random.default_rng(seed=42)\n",
        path="src/repro/core/example.py",
        select=["DET001"],
    )
    assert codes(report) == ["DET001"]
    assert "repro.seeds" in report.findings[0].message


def test_det001_allows_literal_seeds_in_seeds_module():
    report = lint_source(
        "import numpy as np\n"
        "rng = np.random.default_rng(42)\n"
        "rng2 = np.random.default_rng(seed=7)\n",
        path="src/repro/seeds.py",
        select=["DET001"],
    )
    assert codes(report) == []


def test_det001_allows_named_constant_and_threaded_rng():
    report = lint_source(
        "import numpy as np\n"
        "from repro.seeds import TOPOLOGY_SEED\n"
        "rng = np.random.default_rng(TOPOLOGY_SEED)\n"
        "rng2 = np.random.default_rng(derive_seed('topology'))\n",
        path="src/repro/core/example.py",
        select=["DET001"],
    )
    assert codes(report) == []


def test_det001_flags_legacy_numpy_globals_and_stdlib_random():
    report = lint_source(
        "import numpy as np\n"
        "import random\n"
        "x = np.random.uniform(0.0, 1.0)\n"
        "y = random.randint(1, 6)\n"
        "z = random.Random()\n",
        path="src/repro/datasets/example.py",
        select=["DET001"],
    )
    assert codes(report) == ["DET001", "DET001", "DET001"]


def test_det001_resolves_from_imports():
    report = lint_source(
        "from numpy.random import default_rng\n"
        "rng = default_rng()\n",
        path="src/repro/core/example.py",
        select=["DET001"],
    )
    assert codes(report) == ["DET001"]


def test_det001_ignores_local_names_shadowing_random():
    report = lint_source(
        "def run(random):\n"
        "    return random.choice([1, 2])\n",
        path="src/repro/core/example.py",
        select=["DET001"],
    )
    assert codes(report) == []


def test_det001_line_suppression():
    report = lint_source(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro: noqa[DET001]\n",
        path="src/repro/core/example.py",
        select=["DET001"],
    )
    assert codes(report) == []
    assert report.suppressed == 1


# -- DET002 -----------------------------------------------------------------


def test_det002_flags_wall_clock_in_scoped_packages():
    report = lint_source(
        "import time\n"
        "from datetime import datetime\n"
        "def stamp():\n"
        "    return time.time(), datetime.now()\n",
        path="src/repro/routing/example.py",
        select=["DET002"],
    )
    assert codes(report) == ["DET002", "DET002"]


def test_det002_scope_covers_stream_package():
    report = lint_source(
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n",
        path="src/repro/stream/example.py",
        select=["DET002"],
    )
    assert codes(report) == ["DET002"]


def test_det002_ignores_wall_clock_outside_scope():
    report = lint_source(
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n",
        path="src/repro/obs/example.py",
        select=["DET002"],
    )
    assert codes(report) == []


def test_det002_allows_monotonic_telemetry_clocks():
    report = lint_source(
        "import time\n"
        "def measure():\n"
        "    return time.perf_counter() - time.monotonic()\n",
        path="src/repro/datasets/example.py",
        select=["DET002"],
    )
    assert codes(report) == []


def test_det002_flags_set_into_list_and_loop():
    report = lint_source(
        "def build(items):\n"
        "    seen = set(items)\n"
        "    out = list(seen)\n"
        "    for item in seen:\n"
        "        out.append(item)\n"
        "    return out\n",
        path="src/repro/core/example.py",
        select=["DET002"],
    )
    assert codes(report) == ["DET002", "DET002"]


def test_det002_flags_set_intersection_comprehension():
    report = lint_source(
        "def common(a, b):\n"
        "    joint = set(a) & set(b)\n"
        "    return [x for x in joint]\n",
        path="src/repro/core/example.py",
        select=["DET002"],
    )
    assert codes(report) == ["DET002"]


def test_det002_sorted_wrapping_is_clean():
    report = lint_source(
        "def build(items):\n"
        "    seen = set(items)\n"
        "    out = []\n"
        "    for item in sorted(seen):\n"
        "        out.append(item)\n"
        "    return out, len(seen), 3 in seen\n",
        path="src/repro/core/example.py",
        select=["DET002"],
    )
    assert codes(report) == []


def test_det002_membership_only_sets_are_clean():
    report = lint_source(
        "def dedupe(path):\n"
        "    seen = set()\n"
        "    for hop in path:\n"
        "        if hop in seen:\n"
        "            return True\n"
        "        seen.add(hop)\n"
        "    return False\n",
        path="src/repro/core/example.py",
        select=["DET002"],
    )
    assert codes(report) == []


def test_det002_tuple_rebinding_disqualifies_set_names():
    # `s, t = compute()` rebinds s to an unknown value; list(s) must not
    # be flagged just because an earlier binding of s was a set.
    report = lint_source(
        "def build(x, compute):\n"
        "    s = set(x)\n"
        "    s, t = compute()\n"
        "    return list(s)\n",
        path="src/repro/core/example.py",
        select=["DET002"],
    )
    assert codes(report) == []


def test_det002_file_scoped_suppression():
    report = lint_source(
        "# repro: noqa-file[DET002]\n"
        "def build(items):\n"
        "    seen = set(items)\n"
        "    return list(seen)\n",
        path="src/repro/core/example.py",
        select=["DET002"],
    )
    assert codes(report) == []
    assert report.suppressed == 1
