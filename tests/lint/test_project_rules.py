"""Whole-program rule fixtures: DET010, FRK010, SCH010.

These rules run over the project layer (``repro.lint.analysis``) rather
than one AST at a time, so the positive fixtures exercise flows that the
per-file rules are structurally unable to see: a literal seed crossing a
call boundary, a lock held at a transitive fork, a schema edit that
never bumped its version constant.
"""

import json

from repro.lint import lint_paths, lint_source
from repro.lint.analysis.schemas import write_snapshot
from repro.lint.runner import Linter, ProjectOptions


def codes(report):
    return [finding.rule for finding in report.findings]


# -- DET010: interprocedural seed taint ------------------------------------


def test_det010_literal_seed_through_helper():
    # The acceptance fixture: the literal lives two calls away from the
    # Generator construction, in a module that never imports numpy.
    report = lint_source(
        "import numpy as np\n"
        "def make_rng(seed):\n"
        "    return np.random.default_rng(np.random.SeedSequence(seed))\n"
        "def build_platform(seed):\n"
        "    return make_rng(seed)\n"
        "def entry():\n"
        "    return build_platform(42)\n",
        path="src/repro/measurement/helper_seed.py",
        select=["DET010"],
    )
    assert codes(report) == ["DET010"]
    finding = report.findings[0]
    assert finding.line == 7  # reported at the literal, not at the sink
    assert "42" in finding.message
    assert "build_platform" in finding.message


def test_det010_wall_clock_entropy_through_helper():
    report = lint_source(
        "import time\n"
        "import numpy as np\n"
        "def make_rng(entropy):\n"
        "    return np.random.default_rng(np.random.SeedSequence(entropy))\n"
        "def entry():\n"
        "    return make_rng(int(time.time()))\n",
        path="src/repro/measurement/helper_clock.py",
        select=["DET010"],
    )
    assert codes(report) == ["DET010"]
    assert "time.time" in report.findings[0].message


def test_det010_dataclass_field_default():
    report = lint_source(
        "from dataclasses import dataclass\n"
        "import numpy as np\n"
        "@dataclass\n"
        "class Config:\n"
        "    window: int = 30\n"
        "    seed: int = 7\n"
        "def build(config: Config):\n"
        "    return np.random.default_rng(np.random.SeedSequence([config.seed, 1]))\n",
        path="src/repro/measurement/helper_field.py",
        select=["DET010"],
    )
    assert codes(report) == ["DET010"]
    finding = report.findings[0]
    assert finding.line == 6  # the field definition, not the call site
    assert "Config.seed" in finding.message


def test_det010_literal_default_on_sensitive_param():
    report = lint_source(
        "import numpy as np\n"
        "def make_rng(seed=123):\n"
        "    return np.random.default_rng(np.random.SeedSequence(seed))\n",
        path="src/repro/measurement/helper_default.py",
        select=["DET010"],
    )
    assert codes(report) == ["DET010"]
    assert "default" in report.findings[0].message


def test_det010_leaves_direct_literals_to_det001():
    # `default_rng(0)` is DET001's finding; DET010 must not double-report
    # the same expression just because it also sees the flow.
    source = "import numpy as np\nrng = np.random.default_rng(0)\n"
    report = lint_source(source, path="src/repro/core/example.py", select=["DET010"])
    assert codes(report) == []
    report = lint_source(source, path="src/repro/core/example.py", select=["DET001"])
    assert codes(report) == ["DET001"]


def test_det010_named_seed_registry_is_clean():
    report = lint_source(
        "import numpy as np\n"
        "from repro.seeds import PLATFORM_SEED\n"
        "def make_rng(seed=PLATFORM_SEED):\n"
        "    return np.random.default_rng(np.random.SeedSequence(seed))\n",
        path="src/repro/measurement/helper_named.py",
        select=["DET010"],
    )
    assert codes(report) == []


def test_det010_suppressed_by_noqa():
    report = lint_source(
        "import numpy as np\n"
        "def make_rng(seed):\n"
        "    return np.random.default_rng(np.random.SeedSequence(seed))\n"
        "def entry():\n"
        "    return make_rng(42)  # repro: noqa[DET010]\n",
        path="src/repro/measurement/helper_noqa.py",
        select=["DET010"],
    )
    assert codes(report) == []
    assert report.suppressed == 1


# -- FRK010: fork/thread lock order ----------------------------------------


def test_frk010_flags_fork_while_holding_lock():
    report = lint_source(
        "import threading\n"
        "from repro.datasets.parallel import fork_map\n"
        "_STATE_LOCK = threading.Lock()\n"
        "def build(items):\n"
        "    with _STATE_LOCK:\n"
        "        return fork_map(str, items, jobs=2)\n",
        path="src/repro/datasets/fork_lock.py",
        select=["FRK010"],
    )
    assert codes(report) == ["FRK010"]
    finding = report.findings[0]
    assert "fork_map" in finding.message
    assert "_STATE_LOCK" in finding.message


def test_frk010_flags_transitive_fork_under_lock():
    report = lint_source(
        "import threading\n"
        "from repro.datasets.parallel import fork_map\n"
        "_LOCK = threading.Lock()\n"
        "def fan_out(items):\n"
        "    return fork_map(str, items)\n"
        "def build(items):\n"
        "    with _LOCK:\n"
        "        return fan_out(items)\n",
        path="src/repro/datasets/fork_lock2.py",
        select=["FRK010"],
    )
    assert codes(report) == ["FRK010"]
    assert "fan_out" in report.findings[0].message


def test_frk010_local_lock_is_exempt():
    # A function-local lock cannot be the one a forked child would
    # inherit in a held state from another thread.
    report = lint_source(
        "import threading\n"
        "from repro.datasets.parallel import fork_map\n"
        "def build(items):\n"
        "    gate = threading.Lock()\n"
        "    with gate:\n"
        "        return fork_map(str, items)\n",
        path="src/repro/datasets/fork_local.py",
        select=["FRK010"],
    )
    assert codes(report) == []


def test_frk010_flags_unguarded_thread_lock_when_project_forks():
    report = lint_source(
        "import threading\n"
        "from repro.datasets.parallel import fork_map\n"
        "_LOCK = threading.Lock()\n"
        "def _loop():\n"
        "    with _LOCK:\n"
        "        pass\n"
        "def start():\n"
        "    threading.Thread(target=_loop, daemon=True).start()\n"
        "def build(items):\n"
        "    return fork_map(str, items)\n",
        path="src/repro/obs/thread_lock.py",
        select=["FRK010"],
    )
    assert codes(report) == ["FRK010"]
    finding = report.findings[0]
    assert finding.line == 8  # reported at the thread start
    assert "_loop" in finding.message


def test_frk010_fork_guard_routing_is_clean():
    report = lint_source(
        "import threading\n"
        "from repro.datasets.parallel import fork_map\n"
        "from repro.obs.live import fork_guard\n"
        "_LOCK = threading.Lock()\n"
        "def _loop():\n"
        "    with fork_guard():\n"
        "        with _LOCK:\n"
        "            pass\n"
        "def start():\n"
        "    threading.Thread(target=_loop, daemon=True).start()\n"
        "def build(items):\n"
        "    return fork_map(str, items)\n",
        path="src/repro/obs/thread_guarded.py",
        select=["FRK010"],
    )
    assert codes(report) == []


def test_frk010_thread_check_silent_without_fork_actions():
    # No fork anywhere in the project: a thread taking a module lock is
    # ordinary synchronization, not a fork-ordering hazard.
    report = lint_source(
        "import threading\n"
        "_LOCK = threading.Lock()\n"
        "def _loop():\n"
        "    with _LOCK:\n"
        "        pass\n"
        "def start():\n"
        "    threading.Thread(target=_loop, daemon=True).start()\n",
        path="src/repro/obs/thread_only.py",
        select=["FRK010"],
    )
    assert codes(report) == []


# -- SCH010: schema/version compatibility ----------------------------------

_CHECKPOINT_V2 = (
    "CHECKPOINT_SCHEMA_VERSION = 2\n"
    "def save(operator, phase):\n"
    "    payload = {\n"
    "        'schema': CHECKPOINT_SCHEMA_VERSION,\n"
    "        'operator': operator,\n"
    "        'phase': phase,\n"
    "    }\n"
    "    return payload\n"
)


def _tree(tmp_path, checkpoint_source):
    root = tmp_path / "tree" / "repro" / "stream"
    root.mkdir(parents=True)
    (root / "checkpoint.py").write_text(checkpoint_source)
    return tmp_path / "tree"


def _lint(tree, snapshot):
    return lint_paths(
        [tree],
        select=["SCH010"],
        enforce_allowlist=False,
        options=ProjectOptions(schema_snapshot=snapshot),
    )


def _snapshot_for(tmp_path, tree):
    # Build the snapshot from the tree itself, via the same extraction
    # `--update-schema-snapshot` uses.
    from repro.lint.analysis.project import Project
    from repro.lint.analysis.schemas import current_schemas
    from repro.lint.runner import iter_python_files

    linter = Linter(select=[], enforce_allowlist=False)
    summaries = []
    for path in iter_python_files([tree]):
        result = linter._analyze_source(path, path.read_text(encoding="utf-8"))
        if result.get("summary"):
            summaries.append(result["summary"])
    snapshot = tmp_path / "schema_snapshot.json"
    write_snapshot(snapshot, current_schemas(Project(summaries)))
    return snapshot


def test_sch010_clean_when_snapshot_matches(tmp_path):
    tree = _tree(tmp_path, _CHECKPOINT_V2)
    snapshot = _snapshot_for(tmp_path, tree)
    assert codes(_lint(tree, snapshot)) == []


def test_sch010_field_change_without_version_bump(tmp_path):
    tree = _tree(tmp_path, _CHECKPOINT_V2)
    snapshot = _snapshot_for(tmp_path, tree)
    (tree / "repro" / "stream" / "checkpoint.py").write_text(
        _CHECKPOINT_V2.replace("'phase': phase,\n", "'phase': phase,\n        'units_done': 0,\n")
    )
    report = _lint(tree, snapshot)
    assert codes(report) == ["SCH010"]
    finding = report.findings[0]
    assert "version bump" in finding.message
    assert "units_done" in finding.message


def test_sch010_version_bump_requires_snapshot_refresh(tmp_path):
    tree = _tree(tmp_path, _CHECKPOINT_V2)
    snapshot = _snapshot_for(tmp_path, tree)
    (tree / "repro" / "stream" / "checkpoint.py").write_text(
        _CHECKPOINT_V2.replace("CHECKPOINT_SCHEMA_VERSION = 2", "CHECKPOINT_SCHEMA_VERSION = 3")
    )
    report = _lint(tree, snapshot)
    assert codes(report) == ["SCH010"]
    assert "--update-schema-snapshot" in report.findings[0].message


def test_sch010_missing_snapshot_is_one_finding(tmp_path):
    tree = _tree(tmp_path, _CHECKPOINT_V2)
    report = _lint(tree, tmp_path / "does_not_exist.json")
    assert codes(report) == ["SCH010"]
    assert "snapshot" in report.findings[0].message


def test_sch010_snapshot_round_trips(tmp_path):
    tree = _tree(tmp_path, _CHECKPOINT_V2)
    snapshot = _snapshot_for(tmp_path, tree)
    payload = json.loads(snapshot.read_text())
    assert payload["schema"] == 1
    tracked = payload["tracked"]["stream-checkpoint"]
    assert tracked["version"] == 2
    assert tracked["fields"] == ["operator", "phase", "schema"]
