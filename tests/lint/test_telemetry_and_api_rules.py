"""OBS001 and API001 fixtures: positive, negative, and suppressed snippets."""

from repro.lint import Severity, lint_source


def codes(report):
    return [finding.rule for finding in report.findings]


# -- OBS001 -----------------------------------------------------------------


def test_obs001_flags_print_and_bare_logging():
    report = lint_source(
        "import logging\n"
        "def report(value):\n"
        "    print(value)\n"
        "    logging.getLogger(__name__).info('built')\n",
        path="src/repro/harness/example.py",
        select=["OBS001"],
    )
    assert codes(report) == ["OBS001", "OBS001"]


def test_obs001_flags_from_logging_import_and_stream_writes():
    report = lint_source(
        "import sys\n"
        "from logging import getLogger\n"
        "def report(value):\n"
        "    sys.stderr.write(str(value))\n",
        path="src/repro/core/example.py",
        select=["OBS001"],
    )
    assert codes(report) == ["OBS001", "OBS001"]


def test_obs001_allows_cli_main_and_obs_package():
    cli = lint_source(
        "def main():\n"
        "    print('report')\n",
        path="src/repro/__main__.py",
        select=["OBS001"],
    )
    obs = lint_source(
        "import logging\n"
        "HANDLER = logging.StreamHandler()\n",
        path="src/repro/obs/log.py",
        select=["OBS001"],
    )
    assert codes(cli) == []
    assert codes(obs) == []


def test_obs001_structured_logger_is_clean():
    report = lint_source(
        "from repro.obs.log import get_logger\n"
        "_LOG = get_logger('repro.core.example')\n"
        "def report(value):\n"
        "    _LOG.info('built', value=value)\n",
        path="src/repro/core/example.py",
        select=["OBS001"],
    )
    assert codes(report) == []


def test_obs001_suppressed():
    report = lint_source(
        "def report(value):\n"
        "    print(value)  # repro: noqa[OBS001]\n",
        path="src/repro/core/example.py",
        select=["OBS001"],
    )
    assert codes(report) == []
    assert report.suppressed == 1


# -- API001 -----------------------------------------------------------------


def test_api001_flags_missing_param_and_return_annotations():
    report = lint_source(
        "def summarize(values, q=50.0):\n"
        "    return sorted(values)[0]\n",
        path="src/repro/core/example.py",
        select=["API001"],
    )
    assert codes(report) == ["API001", "API001"]
    assert all(f.severity is Severity.WARNING for f in report.findings)


def test_api001_ignores_private_nested_and_out_of_scope():
    source = (
        "def _helper(values):\n"
        "    return values\n"
        "def public() -> int:\n"
        "    def inner(x):\n"
        "        return x\n"
        "    return inner(1)\n"
        "class _Private:\n"
        "    def method(self, x):\n"
        "        return x\n"
    )
    in_scope = lint_source(source, path="src/repro/datasets/example.py", select=["API001"])
    out_of_scope = lint_source(
        "def summarize(values):\n    return values\n",
        path="src/repro/harness/example.py",
        select=["API001"],
    )
    assert codes(in_scope) == []
    assert codes(out_of_scope) == []


def test_api001_fully_annotated_method_is_clean():
    report = lint_source(
        "from typing import List\n"
        "class Analyzer:\n"
        "    def run(self, values: List[float], q: float = 50.0) -> float:\n"
        "        return q\n",
        path="src/repro/core/example.py",
        select=["API001"],
    )
    assert codes(report) == []


def test_api001_warning_exit_code_depends_on_strict():
    report = lint_source(
        "def summarize(values) -> float:\n"
        "    return 0.0\n",
        path="src/repro/core/example.py",
        select=["API001"],
    )
    assert codes(report) == ["API001"]
    assert report.exit_code(strict=False) == 0
    assert report.exit_code(strict=True) == 1
