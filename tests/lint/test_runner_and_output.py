"""Runner behavior: JSON schema, allowlist policy, registry, parse errors."""

import json

from repro.lint import (
    REPORT_SCHEMA,
    Severity,
    all_rules,
    lint_source,
    render_human,
    render_json,
    report_as_dict,
    rule_codes,
)
from repro.lint.allowlist import SUPPRESSION_ALLOWLIST, is_allowlisted


_DIRTY = (
    "import numpy as np\n"
    "rng = np.random.default_rng()\n"
    "def summarize(values):\n"
    "    return values\n"
)


def test_registry_contains_documented_rules():
    expected = {"DET001", "DET002", "FRK001", "OBS001", "API001", "CCH001", "LNT000", "LNT001"}
    assert expected <= set(rule_codes())
    for rule in all_rules():
        assert rule.code and rule.name and rule.rationale
        assert isinstance(rule.severity, Severity)


def test_json_report_schema():
    report = lint_source(_DIRTY, path="src/repro/core/example.py")
    payload = json.loads(render_json(report))
    assert payload == report_as_dict(report)
    assert payload["schema"] == REPORT_SCHEMA
    assert payload["tool"] == "repro.lint"
    assert payload["files"] == 1
    assert isinstance(payload["findings"], list) and payload["findings"]
    for finding in payload["findings"]:
        assert set(finding) == {"rule", "severity", "path", "line", "col", "message"}
        assert finding["severity"] in ("error", "warning")
        assert isinstance(finding["line"], int) and finding["line"] >= 1
    summary = payload["summary"]
    assert summary["findings"] == len(payload["findings"])
    assert summary["errors"] + summary["warnings"] == summary["findings"]
    assert summary["by_rule"]["DET001"] == 1
    # API001 (missing annotations) is the warning; DET001 the error.
    assert summary["errors"] >= 1 and summary["warnings"] >= 1


def test_findings_sorted_and_human_rendering():
    report = lint_source(_DIRTY, path="src/repro/core/example.py")
    keys = [f.sort_key() for f in sorted(report.findings, key=lambda f: f.sort_key())]
    assert keys == sorted(keys)
    text = render_human(report)
    assert "src/repro/core/example.py:2" in text
    assert "DET001" in text
    assert text.strip().endswith("suppressed")


def test_parse_failure_yields_lnt001():
    report = lint_source("def broken(:\n", path="src/repro/core/example.py")
    assert [f.rule for f in report.findings] == ["LNT001"]
    assert report.exit_code() == 1


def test_undocumented_suppression_yields_lnt000():
    source = "import numpy as np\nrng = np.random.default_rng()  # repro: noqa[DET001]\n"
    report = lint_source(
        source, path="src/repro/core/example.py", select=["DET001", "LNT000"],
        enforce_allowlist=True,
    )
    assert [f.rule for f in report.findings] == ["LNT000"]
    assert report.suppressed == 1  # the DET001 noqa still applies...
    assert report.exit_code() == 1  # ...but the undocumented comment fails the run


def test_allowlisted_suppression_is_silent():
    # repro/core/ownership.py x DET002 is the one documented allowance.
    source = "def pick(distinct):\n    return next(iter(distinct))  # repro: noqa[DET002]\n"
    report = lint_source(
        source, path="src/repro/core/ownership.py", select=["DET002", "LNT000"],
        enforce_allowlist=True,
    )
    assert report.findings == []


def test_allowlist_entries_are_narrow_and_reasoned():
    for allowance in SUPPRESSION_ALLOWLIST:
        assert allowance.path.endswith(".py")
        assert allowance.rule in rule_codes()
        assert len(allowance.reason) >= 20
        assert is_allowlisted(__import__("pathlib").Path("x/" + allowance.path), allowance.rule)


def test_allowlist_matching_stops_at_path_boundaries():
    from pathlib import Path

    allowance = SUPPRESSION_ALLOWLIST[0]
    assert is_allowlisted(Path(allowance.path), allowance.rule)
    assert is_allowlisted(Path("src/" + allowance.path), allowance.rule)
    # A path that merely *ends with* the allowed string (no component
    # boundary) must not inherit the allowance.
    assert not is_allowlisted(Path("src/other_" + allowance.path), allowance.rule)


def test_relative_imports_resolve_against_the_right_package():
    from pathlib import Path

    from repro.lint.context import FileContext

    source = "from . import sibling\nfrom .sibling import thing\n"
    # In a plain module, `.` is the containing package...
    module_ctx = FileContext(Path("src/repro/core/example.py"), source)
    assert module_ctx.aliases["sibling"] == "repro.core.sibling"
    assert module_ctx.aliases["thing"] == "repro.core.sibling.thing"
    # ...and in a package __init__, `.` is the package itself.
    package_ctx = FileContext(Path("src/repro/core/__init__.py"), source)
    assert package_ctx.aliases["sibling"] == "repro.core.sibling"
    assert package_ctx.aliases["thing"] == "repro.core.sibling.thing"
    two_up = FileContext(Path("src/repro/core/__init__.py"), "from ..obs import log\n")
    assert two_up.aliases["log"] == "repro.obs.log"


def test_select_and_ignore_filters():
    everything = lint_source(_DIRTY, path="src/repro/core/example.py")
    only_det = lint_source(_DIRTY, path="src/repro/core/example.py", select=["DET001"])
    no_api = lint_source(_DIRTY, path="src/repro/core/example.py", ignore=["API001"])
    assert {f.rule for f in only_det.findings} == {"DET001"}
    assert "API001" not in {f.rule for f in no_api.findings}
    assert len(everything.findings) > len(only_det.findings)
