"""Tracing spans: parentage, summaries, coverage, Chrome export."""

import time

import pytest

from repro.obs import trace
from repro.obs.trace import Tracer, get_tracer, use_tracer


def test_nested_spans_record_parentage():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner", items=3) as inner:
            pass
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert inner.attrs == {"items": 3}
    assert inner.duration_seconds <= outer.duration_seconds
    assert [item.name for item in tracer.spans] == ["outer", "inner"]
    assert tracer.roots() == [outer]


def test_duration_zero_while_open():
    tracer = Tracer()
    with tracer.span("open") as span:
        assert span.duration_seconds == 0.0
        assert tracer.current() is span
    assert span.duration_seconds >= 0.0
    assert tracer.current() is None


def test_record_span_attaches_under_current():
    tracer = Tracer()
    with tracer.span("parent") as parent:
        recorded = tracer.record_span("child", 0.25, kind="load")
    assert recorded.parent_id == parent.span_id
    assert recorded.duration_seconds == pytest.approx(0.25)
    assert recorded.attrs == {"kind": "load"}


def test_summary_aggregates_by_name_in_first_seen_order():
    tracer = Tracer()
    tracer.record_span("b", 1.0)
    tracer.record_span("a", 2.0)
    tracer.record_span("b", 3.0)
    summary = tracer.summary()
    assert list(summary) == ["b", "a"]
    assert summary["b"] == {"count": 2, "seconds": 4.0}
    assert summary["a"] == {"count": 1, "seconds": 2.0}


def test_coverage_of_instrumented_run():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("stage1"):
            time.sleep(0.02)
        with tracer.span("stage2"):
            time.sleep(0.02)
    coverage = tracer.coverage()
    assert coverage is not None
    assert coverage > 0.9  # almost no un-attributed root time


def test_coverage_none_without_closed_roots():
    tracer = Tracer()
    assert tracer.coverage() is None
    assert tracer.total_seconds() == 0.0


def test_chrome_trace_export_shape():
    tracer = Tracer()
    with tracer.span("root", scenario="small"):
        with tracer.span("child"):
            pass
    doc = tracer.to_chrome_trace()
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert len(events) == 2
    by_name = {event["name"]: event for event in events}
    root, child = by_name["root"], by_name["child"]
    for event in events:
        assert event["ph"] == "X"
        assert event["cat"] == "repro"
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
        assert event["pid"] == root["pid"]
        assert event["tid"] == 0
    assert root["args"]["scenario"] == "small"
    assert child["args"]["parent_id"] == root["args"]["span_id"]
    # The child interval is contained in the root's -- how viewers nest.
    assert child["ts"] >= root["ts"]
    assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-3


def test_use_tracer_swaps_and_restores():
    original = get_tracer()
    scoped = Tracer()
    with use_tracer(scoped):
        assert get_tracer() is scoped
        with trace.span("inside"):
            pass
    assert get_tracer() is original
    assert [item.name for item in scoped.spans] == ["inside"]
    assert all(item.name != "inside" for item in original.spans)


def test_stage_helper_delegates_to_timings():
    from repro.harness.engine import Timings

    tracer = Tracer()
    with use_tracer(tracer):
        timings = Timings()
        with trace.stage("build", timings):
            pass
        with trace.stage("bare"):
            pass
    # Exactly one span per stage: the Timings shim opened "build" itself.
    assert [item.name for item in tracer.spans] == ["build", "bare"]
    assert [name for name, _ in timings.stages] == ["build"]
