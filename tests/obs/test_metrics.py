"""Metrics registry: instrument semantics, snapshots, fork-delta merging."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("hits")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.counter("hits") is counter  # get-or-create
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1)


def test_gauge_is_last_write_wins():
    registry = MetricsRegistry()
    gauge = registry.gauge("jobs")
    gauge.set(4)
    gauge.set(2)
    assert gauge.value == 2


def test_histogram_buckets_and_stats():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(value)
    stats = hist.stats()
    assert stats["count"] == 5
    assert stats["sum"] == pytest.approx(56.05)
    assert stats["min"] == 0.05
    assert stats["max"] == 50.0
    assert stats["bounds"] == [0.1, 1.0, 10.0]
    # One per bound bucket plus the +inf overflow slot.
    assert stats["counts"] == [1, 2, 1, 1]


def test_kind_clash_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError, match="is a Counter"):
        registry.gauge("x")


def test_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(7)
    registry.histogram("h").observe(0.2)
    snap = registry.snapshot()
    assert snap["counters"] == {"c": 3}
    assert snap["gauges"] == {"g": 7}
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["histograms"]["h"]["bounds"] == list(DEFAULT_BUCKETS)


def test_delta_since_reports_only_changes():
    registry = MetricsRegistry()
    registry.counter("stable").inc(10)
    registry.counter("moving").inc(1)
    registry.histogram("h", buckets=(1.0,)).observe(0.5)
    baseline = registry.snapshot()

    registry.counter("moving").inc(2)
    registry.counter("fresh").inc(1)
    registry.histogram("h").observe(2.0)
    delta = registry.delta_since(baseline)

    assert delta["counters"] == {"moving": 2, "fresh": 1}
    assert "stable" not in delta["counters"]
    hist = delta["histograms"]["h"]
    assert hist["count"] == 1
    assert hist["sum"] == pytest.approx(2.0)
    assert hist["counts"] == [0, 1]  # only the new overflow observation


def test_merge_replays_delta_exactly():
    # Simulate the fork_map scheme: the "worker" inherits a copy of the
    # parent state, measures, and ships back a delta the parent merges.
    parent = MetricsRegistry()
    parent.counter("items").inc(5)
    parent.histogram("secs", buckets=(1.0, 10.0)).observe(0.5)

    worker = MetricsRegistry()
    worker.counter("items").inc(5)  # inherited pre-fork history
    worker.histogram("secs", buckets=(1.0, 10.0)).observe(0.5)
    baseline = worker.snapshot()
    worker.counter("items").inc(3)
    worker.histogram("secs").observe(20.0)
    worker.histogram("secs").observe(0.1)

    parent.merge(worker.delta_since(baseline))
    snap = parent.snapshot()
    assert snap["counters"]["items"] == 8
    hist = snap["histograms"]["secs"]
    assert hist["count"] == 3
    assert hist["sum"] == pytest.approx(20.6)
    assert hist["min"] == 0.1
    assert hist["max"] == 20.0
    assert hist["counts"] == [2, 0, 1]


def test_merge_rejects_changed_bounds():
    parent = MetricsRegistry()
    parent.histogram("h", buckets=(1.0, 2.0))
    delta = {
        "histograms": {
            "h": {"count": 1, "sum": 0.5, "min": 0.5, "max": 0.5,
                  "bounds": [5.0], "counts": [1, 0]}
        }
    }
    with pytest.raises(ValueError, match="bucket bounds changed"):
        parent.merge(delta)


def test_reset_empties_registry():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.reset()
    assert registry.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}
    }
