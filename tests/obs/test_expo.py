"""HTTP exposition: Prometheus text rendering and the live endpoints."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.expo import (
    CONTENT_TYPE_METRICS,
    LIVE_STATUS_SCHEMA,
    MetricsServer,
    escape_label_value,
    parse_metric_name,
    prometheus_text,
)
from repro.obs.live import FlightRecorder, RunStatus
from repro.obs.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# Metric-name parsing and escaping
# ----------------------------------------------------------------------

def test_parse_metric_name_plain_and_labeled():
    assert parse_metric_name("stream.units") == ("stream.units", {})
    assert parse_metric_name("stream.queue_depth{shard=3}") == (
        "stream.queue_depth", {"shard": "3"}
    )
    assert parse_metric_name("x{a=1,b=two}") == ("x", {"a": "1", "b": "two"})


def test_parse_metric_name_malformed_kept_verbatim():
    # No closing brace, and a block without '=': both stay one name.
    assert parse_metric_name("x{a=1") == ("x{a=1", {})
    assert parse_metric_name("x{oops}") == ("x{oops}", {})


def test_escape_label_value():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"


def test_label_escaping_round_trips_into_exposition():
    snapshot = {"gauges": {'weird{path=a\\b"c}': 1.5}, "counters": {}, "histograms": {}}
    text = prometheus_text(snapshot)
    assert 'repro_weird{path="a\\\\b\\"c"} 1.5' in text


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------

def test_counter_rendering_gets_total_suffix_and_prefix():
    registry = MetricsRegistry()
    registry.counter("stream.units").inc(7)
    text = prometheus_text(registry.snapshot())
    assert "# TYPE repro_stream_units_total counter" in text
    assert "repro_stream_units_total 7" in text


def test_counter_monotonic_across_snapshots():
    registry = MetricsRegistry()
    counter = registry.counter("stream.units")
    values = []
    for increment in (1, 4, 2):
        counter.inc(increment)
        text = prometheus_text(registry.snapshot())
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_stream_units_total ")
        )
        values.append(float(line.split()[-1]))
    assert values == sorted(values)
    assert values == [1, 5, 7]


def test_histogram_buckets_are_cumulative():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        hist.observe(value)
    text = prometheus_text(registry.snapshot())
    assert "# TYPE repro_latency histogram" in text
    assert 'repro_latency_bucket{le="0.1"} 1' in text
    assert 'repro_latency_bucket{le="1"} 3' in text
    assert 'repro_latency_bucket{le="+Inf"} 4' in text
    assert "repro_latency_count 4" in text
    assert "repro_latency_sum 6.05" in text


def test_labeled_series_share_one_type_line():
    registry = MetricsRegistry()
    registry.gauge("stream.queue_depth{shard=0}").set(2)
    registry.gauge("stream.queue_depth{shard=1}").set(5)
    text = prometheus_text(registry.snapshot())
    assert text.count("# TYPE repro_stream_queue_depth gauge") == 1
    assert 'repro_stream_queue_depth{shard="0"} 2' in text
    assert 'repro_stream_queue_depth{shard="1"} 5' in text


def test_name_sanitization():
    text = prometheus_text(
        {"gauges": {"weird-name.with spaces": 1}, "counters": {}, "histograms": {}}
    )
    assert "repro_weird_name_with_spaces 1" in text


def test_families_sorted_and_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.gauge("zzz").set(1)
    registry.counter("aaa").inc()
    text = prometheus_text(registry.snapshot())
    assert text.index("repro_aaa_total") < text.index("repro_zzz")

    conflicted = {
        "counters": {"x": 1},
        "gauges": {"x_total": 2},  # collides with the counter family
        "histograms": {},
    }
    with pytest.raises(ValueError, match="exposed as both"):
        prometheus_text(conflicted)


# ----------------------------------------------------------------------
# HTTP endpoints (ephemeral port)
# ----------------------------------------------------------------------

def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


def test_http_endpoints_serve_metrics_status_health():
    registry = MetricsRegistry()
    registry.counter("stream.units").inc(3)
    status = RunStatus()
    status.begin_run(mode="test", scenario="small")
    status.set_phase("stream:longterm")
    status.set_shards(2)
    status.shard_unit(0, 5)
    recorder = FlightRecorder(registry=registry, status=status, interval_seconds=60)
    recorder.sample()
    server = MetricsServer(
        registry=registry, status=status, recorder=recorder, port=0
    ).start()
    try:
        code, headers, body = _get(server.url + "/metrics")
        assert code == 200
        assert headers["Content-Type"] == CONTENT_TYPE_METRICS
        assert "repro_stream_units_total 3" in body
        # derived gauges refreshed at scrape time
        assert 'repro_live_shard_heartbeat_age_seconds{shard="0"}' in body

        code, headers, body = _get(server.url + "/status")
        assert code == 200
        payload = json.loads(body)
        assert payload["schema"] == LIVE_STATUS_SCHEMA
        assert payload["run"] == {"mode": "test", "scenario": "small"}
        assert payload["phase"] == "stream:longterm"
        assert [s["shard"] for s in payload["stream"]["shards"]] == [0, 1]
        assert payload["stream"]["shards"][0]["units"] == 5
        assert payload["sample"]["counters"]["stream.units"] == 3

        code, _, body = _get(server.url + "/health")
        assert code == 200 and body == "ok\n"

        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/nope")
        assert err.value.code == 404
    finally:
        server.close()


def test_server_close_is_idempotent_and_releases_port():
    server = MetricsServer(registry=MetricsRegistry(), port=0).start()
    url = server.url
    server.close()
    server.close()  # second close is a no-op
    with pytest.raises(OSError):
        urllib.request.urlopen(url + "/health", timeout=1)


# ----------------------------------------------------------------------
# Route table
# ----------------------------------------------------------------------

def test_live_status_schema_covers_campaigns():
    assert LIVE_STATUS_SCHEMA == 2  # v2 added the campaigns table
    status = RunStatus()
    status.set_campaign("mesh", state="running", cycle=1)
    server = MetricsServer(
        registry=MetricsRegistry(), status=status, port=0
    ).start()
    try:
        _, _, body = _get(server.url + "/status")
        payload = json.loads(body)
        (row,) = payload["campaigns"]
        assert (row["name"], row["state"], row["cycle"]) == ("mesh", "running", 1)
    finally:
        server.close()


def _post(url):
    request = urllib.request.Request(url, method="POST")
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, response.read().decode()


def test_add_route_mounts_get_and_post_handlers():
    server = MetricsServer(registry=MetricsRegistry(), port=0)
    hits = []
    server.add_route("GET", "/custom", lambda: (200, "text/plain", "got\n"))
    server.add_route(
        "post", "/custom", lambda: (hits.append(1), (202, "text/plain", "did\n"))[1]
    )
    server.start()
    try:
        code, _, body = _get(server.url + "/custom")
        assert (code, body) == (200, "got\n")
        code, body = _post(server.url + "/custom")
        assert (code, body, hits) == (202, "did\n", [1])

        # POST to a GET-only built-in is unknown.
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server.url + "/metrics")
        assert err.value.code == 404
    finally:
        server.close()


def test_route_exception_becomes_500():
    def exploding():
        raise RuntimeError("handler boom")

    server = MetricsServer(registry=MetricsRegistry(), port=0)
    server.add_route("GET", "/boom", exploding)
    server.start()
    try:
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/boom")
        assert err.value.code == 500
    finally:
        server.close()


def test_add_route_replaces_existing_handler():
    server = MetricsServer(registry=MetricsRegistry(), port=0)
    server.add_route("GET", "/v", lambda: (200, "text/plain", "one\n"))
    server.add_route("GET", "/v", lambda: (200, "text/plain", "two\n"))
    server.start()
    try:
        _, _, body = _get(server.url + "/v")
        assert body == "two\n"
    finally:
        server.close()
