"""Shared observability-test isolation.

Every test in this package gets a clean observability slate: a fresh
default tracer, an emptied default metrics registry, and no installed
log handler -- before and after, so obs tests neither see state from the
wider suite nor leak any into it.
"""

import pytest

from repro.obs import log, metrics, trace


@pytest.fixture(autouse=True)
def clean_obs_state():
    log.reset()
    metrics.get_registry().reset()
    trace.set_tracer(trace.Tracer())
    yield
    log.reset()
    metrics.get_registry().reset()
    trace.set_tracer(trace.Tracer())
