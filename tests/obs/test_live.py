"""Flight recorder and run-status board: rings, streams, post-mortems."""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.obs.live import (
    LIVE_SCHEMA,
    FlightRecorder,
    RunStatus,
    process_stats,
    refresh_derived_gauges,
)
from repro.obs.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# RunStatus
# ----------------------------------------------------------------------

def test_status_board_round_trip():
    status = RunStatus()
    status.begin_run(mode="stream", scenario="small", seed=7)
    status.set_phase("routing")
    status.set_shards(2)
    status.shard_unit(0)
    status.shard_unit(0)
    status.shard_unit(1, 5)
    status.set_checkpoint(fingerprint="abc123", units_done=40)
    board = status.as_dict()
    assert board["run"] == {"mode": "stream", "scenario": "small", "seed": 7}
    assert board["phase"] == "routing"
    assert board["phase_age_s"] >= 0
    assert board["elapsed_s"] >= 0
    assert [(s["shard"], s["units"]) for s in board["stream"]["shards"]] == [
        (0, 2), (1, 5)
    ]
    assert all(s["heartbeat_age_s"] >= 0 for s in board["stream"]["shards"])
    assert board["checkpoint"]["fingerprint"] == "abc123"
    assert board["checkpoint"]["units_done"] == 40
    assert board["checkpoint"]["age_s"] >= 0
    assert "saved_mono" not in board["checkpoint"]


def test_status_reset_blanks_everything():
    status = RunStatus()
    status.begin_run(mode="x")
    status.set_shards(3)
    status.reset()
    board = status.as_dict()
    assert board["run"] == {} and board["phase"] is None
    assert board["stream"]["shards"] == [] and board["checkpoint"] == {}


def test_set_shards_reinitializes_table():
    status = RunStatus()
    status.set_shards(2)
    status.shard_unit(0, 9)
    status.set_shards(1)
    board = status.as_dict()
    assert [(s["shard"], s["units"]) for s in board["stream"]["shards"]] == [(0, 0)]


def test_refresh_derived_gauges_projects_ages():
    registry = MetricsRegistry()
    status = RunStatus()
    status.set_phase("build")
    status.set_shards(1)
    status.set_checkpoint(fingerprint="f")
    refresh_derived_gauges(registry, status)
    gauges = registry.snapshot()["gauges"]
    assert gauges["live.phase_age_seconds"] >= 0
    assert gauges["live.checkpoint_age_seconds"] >= 0
    assert gauges["live.shard_heartbeat_age_seconds{shard=0}"] >= 0


def test_process_stats_shape():
    stats = process_stats()
    assert stats["rss_mb"] > 0
    assert stats["cpu_user_s"] >= 0
    assert stats["threads"] >= 1


# ----------------------------------------------------------------------
# FlightRecorder
# ----------------------------------------------------------------------

def test_sample_shape_and_sequencing():
    registry = MetricsRegistry()
    registry.counter("stream.units").inc(4)
    registry.histogram("h").observe(0.5)
    recorder = FlightRecorder(registry=registry, status=RunStatus(), interval_seconds=60)
    first = recorder.sample()
    second = recorder.sample()
    assert first["schema"] == LIVE_SCHEMA
    assert (first["seq"], second["seq"]) == (0, 1)
    assert first["counters"]["stream.units"] == 4
    assert first["histograms"]["h"] == {"count": 1, "sum": 0.5}
    assert first["process"]["rss_mb"] > 0
    assert "final" not in first
    assert recorder.latest() is second


def test_ring_wraparound_keeps_newest():
    recorder = FlightRecorder(
        registry=MetricsRegistry(), status=RunStatus(),
        interval_seconds=60, capacity=3,
    )
    for _ in range(7):
        recorder.sample()
    kept = recorder.samples()
    assert len(kept) == 3
    assert [s["seq"] for s in kept] == [4, 5, 6]


def test_streaming_jsonl_and_final_sample(tmp_path):
    out = tmp_path / "live.jsonl"
    registry = MetricsRegistry()
    recorder = FlightRecorder(
        registry=registry, status=RunStatus(),
        interval_seconds=60, out_path=out,
    )
    recorder.sample()
    registry.counter("stream.units").inc()
    recorder.stop(reason="complete")
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert [line["seq"] for line in lines] == list(range(len(lines)))
    assert lines[-1]["final"] is True and lines[-1]["reason"] == "complete"
    assert lines[-1]["counters"]["stream.units"] == 1


def test_stop_is_idempotent_and_never_truncates(tmp_path):
    out = tmp_path / "live.jsonl"
    recorder = FlightRecorder(
        registry=MetricsRegistry(), status=RunStatus(),
        interval_seconds=60, out_path=out,
    )
    recorder.sample()
    recorder.stop(reason="sigterm")
    size = out.stat().st_size
    recorder.stop(reason="again")
    recorder.sample()  # post-stop samples must not reopen/truncate the file
    assert out.stat().st_size == size
    lines = out.read_text().splitlines()
    assert json.loads(lines[-1])["reason"] == "sigterm"


def test_sampling_thread_collects(tmp_path):
    recorder = FlightRecorder(
        registry=MetricsRegistry(), status=RunStatus(), interval_seconds=0.02
    )
    recorder.start()
    deadline = time.monotonic() + 5.0
    while len(recorder.samples()) < 3 and time.monotonic() < deadline:
        time.sleep(0.01)
    final = recorder.stop()
    assert len(recorder.samples()) >= 3
    assert final["final"] is True


def test_dump_writes_whole_ring(tmp_path):
    recorder = FlightRecorder(
        registry=MetricsRegistry(), status=RunStatus(),
        interval_seconds=60, capacity=5,
    )
    for _ in range(3):
        recorder.sample()
    target = recorder.dump(tmp_path / "post" / "mortem.jsonl", reason="crash")
    lines = [json.loads(line) for line in target.read_text().splitlines()]
    assert len(lines) == 4  # three samples + the final one dump() takes
    assert lines[-1]["final"] is True and lines[-1]["reason"] == "crash"


def test_constructor_validation():
    with pytest.raises(ValueError, match="interval_seconds"):
        FlightRecorder(registry=MetricsRegistry(), interval_seconds=0)
    with pytest.raises(ValueError, match="capacity"):
        FlightRecorder(registry=MetricsRegistry(), capacity=0)


def test_sigterm_leaves_fresh_final_sample(tmp_path):
    """A SIGTERM'd run's live file ends with a fresh ``final`` sample.

    Runs the CLI live plane in a subprocess and has it SIGTERM itself
    (external delivery, through the installed handler).
    """
    out = tmp_path / "live.jsonl"
    script = textwrap.dedent(
        f"""
        import argparse, os, signal, time
        from repro.__main__ import _live_plane

        args = argparse.Namespace(
            live_out={str(out)!r}, serve_metrics=None, live_interval=0.05
        )
        with _live_plane(args, mode="test"):
            time.sleep(0.2)
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(5)
            raise SystemExit("handler did not fire")
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(p) for p in sys.path if p] or [""]
    )
    result = subprocess.run(
        [sys.executable, "-c", script], env=env,
        capture_output=True, text=True, timeout=60,
    )
    assert result.returncode == -signal.SIGTERM, result.stderr
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert lines[-1]["final"] is True and lines[-1]["reason"] == "sigterm"
    if len(lines) >= 2:
        # freshness: the final sample trails the previous one by less
        # than two sampling intervals
        assert lines[-1]["mono"] - lines[-2]["mono"] < 2 * 0.05 + 0.5


# ----------------------------------------------------------------------
# Campaign board
# ----------------------------------------------------------------------

def test_campaign_rows_merge_and_sort():
    status = RunStatus()
    status.set_campaign("pings", state="running", cycle=3)
    status.set_campaign("mesh", state="idle")
    status.set_campaign("pings", units_done=7)  # merge, not replace
    board = status.as_dict()["campaigns"]
    assert [row["name"] for row in board] == ["mesh", "pings"]
    pings = board[1]
    assert pings["state"] == "running"
    assert pings["cycle"] == 3
    assert pings["units_done"] == 7
    assert pings["updated_age_s"] >= 0
    assert "updated_mono" not in pings


def test_drop_campaign_removes_row():
    status = RunStatus()
    status.set_campaign("mesh", state="running")
    status.drop_campaign("mesh")
    status.drop_campaign("never-there")  # harmless
    assert status.as_dict()["campaigns"] == []


def test_reset_clears_campaigns():
    status = RunStatus()
    status.set_campaign("mesh", state="running")
    status.reset()
    assert status.as_dict()["campaigns"] == []


def test_refresh_derived_gauges_projects_campaign_ages():
    registry = MetricsRegistry()
    status = RunStatus()
    status.set_campaign("mesh", state="running")
    refresh_derived_gauges(registry, status)
    gauges = registry.snapshot()["gauges"]
    assert gauges["live.campaign_update_age_seconds{campaign=mesh}"] >= 0
