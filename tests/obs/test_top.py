"""Terminal dashboard: sparklines, frame rendering, follow/poll modes."""

import json

from repro.obs import top
from repro.obs.expo import MetricsServer
from repro.obs.live import FlightRecorder, RunStatus
from repro.obs.metrics import MetricsRegistry


def _sample(seq, mono, units, shards=(), final=False, **extra):
    record = {
        "schema": 1,
        "seq": seq,
        "unix": 1000.0 + mono,
        "mono": mono,
        "process": {"rss_mb": 120.0, "cpu_user_s": 1.5, "cpu_system_s": 0.2},
        "counters": {"stream.units": units, "stream.records": units * 10},
        "gauges": {},
        "histograms": {},
        "status": {
            "run": {"scenario": "small", "seed": 0},
            "phase": "stream:longterm",
            "phase_age_s": 1.0,
            "elapsed_s": mono,
            "stream": {"shards": list(shards)},
            "checkpoint": {},
        },
    }
    if final:
        record["final"] = True
        record["reason"] = "complete"
    for key, value in extra.items():
        record[key] = value
    return record


# ----------------------------------------------------------------------
# sparkline / rates
# ----------------------------------------------------------------------

def test_sparkline_scales_to_max():
    line = top.sparkline([0, 1, 2, 4])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"


def test_sparkline_empty_and_flat():
    assert top.sparkline([]) == ""
    assert top.sparkline([0, 0]) == "▁▁"
    assert top.sparkline(list(range(100)), width=10) == top.sparkline(
        list(range(90, 100)), width=10
    )


def test_shard_rows_units_and_rates():
    shards = [
        {"shard": 0, "units": 30, "heartbeat_age_s": 0.1},
        {"shard": 1, "units": 28, "heartbeat_age_s": 0.2},
    ]
    first = _sample(0, 10.0, 40, shards=shards)
    second = _sample(1, 12.0, 80, shards=shards)
    for sample, value in ((first, 10), (second, 30)):
        sample["counters"]["stream.shard_units{shard=0}"] = value
        sample["gauges"]["stream.queue_depth{shard=0}"] = 4
    rows = top.shard_rows([first, second])
    assert rows[0][0] == 0 and rows[0][1] == 30
    assert rows[0][2] == 10.0  # (30-10)/2s
    assert rows[0][3] == 4
    assert rows[1][2] == 0.0  # shard 1 has no counter history


# ----------------------------------------------------------------------
# frame rendering
# ----------------------------------------------------------------------

def test_render_frame_empty():
    assert "waiting for samples" in top.render_frame([])


def test_render_frame_full():
    shards = [{"shard": 0, "units": 54, "heartbeat_age_s": 0.05}]
    samples = [
        _sample(0, 10.0, 100, shards=shards),
        _sample(1, 11.0, 150, shards=shards),
        _sample(2, 12.0, 250, shards=shards, final=True),
    ]
    samples[-1]["status"]["checkpoint"] = {
        "fingerprint": "deadbeef", "units_done": 54, "age_s": 0.4
    }
    frame = top.render_frame(samples)
    assert "scenario small" in frame
    assert "stream:longterm" in frame
    assert "rss 120.0 MB" in frame
    assert "units 250" in frame
    assert "100.0" in frame  # last units/s: (250-150)/1s
    assert "ckpt" in frame and "deadbeef" in frame
    assert "shard" in frame and "54" in frame
    assert "run ended (complete)" in frame


# ----------------------------------------------------------------------
# follow / poll plumbing
# ----------------------------------------------------------------------

def test_iter_follow_samples_tails_partial_lines(tmp_path):
    path = tmp_path / "live.jsonl"
    stream = top.iter_follow_samples(path, poll_seconds=0)
    assert next(stream) is None  # no file yet

    path.write_text(json.dumps(_sample(0, 1.0, 5)) + "\n")
    assert next(stream)["seq"] == 0
    assert next(stream) is None  # drained

    # A partially-written line is buffered until its newline arrives.
    full = json.dumps(_sample(1, 2.0, 6))
    with open(path, "a") as handle:
        handle.write(full[:10])
    assert next(stream) is None
    with open(path, "a") as handle:
        handle.write(full[10:] + "\n")
    assert next(stream)["seq"] == 1


def test_follow_once_renders_whole_file(tmp_path, capsys):
    path = tmp_path / "live.jsonl"
    shards = [{"shard": 0, "units": 9, "heartbeat_age_s": 0.1}]
    with open(path, "w") as handle:
        for seq in range(3):
            handle.write(
                json.dumps(_sample(seq, float(seq), 10 * (seq + 1), shards=shards))
                + "\n"
            )
    assert top.main(["--follow", str(path), "--once"]) == 0
    out = capsys.readouterr().out
    assert "units 30" in out  # newest sample, not the first one
    assert "\x1b" not in out  # --once never clears the screen


def test_poll_mode_against_live_server(capsys):
    registry = MetricsRegistry()
    registry.counter("stream.units").inc(12)
    status = RunStatus()
    status.begin_run(scenario="small", seed=0)
    recorder = FlightRecorder(registry=registry, status=status, interval_seconds=60)
    recorder.sample()
    server = MetricsServer(
        registry=registry, status=status, recorder=recorder, port=0
    ).start()
    try:
        sample = top.poll_status_sample(server.url)
        assert sample["counters"]["stream.units"] == 12
        assert top.main(["--url", server.url, "--once"]) == 0
        assert "units 12" in capsys.readouterr().out
    finally:
        server.close()


def test_poll_mode_errors_when_endpoint_never_answers(capsys):
    assert top.poll_status_sample("http://127.0.0.1:9") is None


def test_parser_requires_exactly_one_source():
    parser = top.build_parser()
    args = parser.parse_args(["--follow", "x.jsonl", "--interval", "0.5"])
    assert args.follow == "x.jsonl" and args.interval == 0.5
    try:
        parser.parse_args([])
    except SystemExit as exc:
        assert exc.code == 2
    else:  # pragma: no cover
        raise AssertionError("parser accepted no source")


# ----------------------------------------------------------------------
# campaign table
# ----------------------------------------------------------------------

def test_campaign_rows_take_latest_sample():
    first = _sample(0, 10.0, 10)
    second = _sample(1, 11.0, 20)
    second["status"]["campaigns"] = [
        {"name": "mesh", "state": "running"},
        "not-a-row",
    ]
    assert top.campaign_rows([]) == []
    assert top.campaign_rows([first]) == []
    assert top.campaign_rows([first, second]) == [
        {"name": "mesh", "state": "running"}
    ]


def test_render_frame_includes_campaign_table():
    sample = _sample(0, 10.0, 100)
    sample["status"]["campaigns"] = [
        {
            "name": "traceroute-mesh",
            "state": "running",
            "cycle": 4,
            "units_done": 12,
            "units_total": 64,
            "next_fire_s": 0.0,
            "fingerprint": "abcdef0123456789",
        },
        {"name": "pings", "state": "idle"},
    ]
    frame = top.render_frame([sample])
    assert "campaign" in frame and "next fire" in frame
    assert "traceroute-mesh" in frame
    assert "12/64" in frame
    assert "abcdef012345" in frame  # fingerprint clipped to 12 chars
    assert "abcdef0123456789" not in frame
    assert "pings" in frame
