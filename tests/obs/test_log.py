"""Structured logging: formatters, configure semantics, progress."""

import io
import json
import logging

import pytest

from repro.obs import log


def test_human_lines_carry_event_and_fields():
    stream = io.StringIO()
    log.configure(level="info", json_mode=False, stream=stream)
    log.get_logger("test").info("cache.hit", kind="platform", seconds=0.25)
    line = stream.getvalue().strip()
    assert "repro.test: cache.hit" in line
    assert "kind=platform" in line
    assert "seconds=0.25" in line


def test_json_lines_are_parseable_with_schema():
    stream = io.StringIO()
    log.configure(level="debug", json_mode=True, stream=stream)
    logger = log.get_logger("test")
    logger.info("build.start", scenario="small", jobs=2)
    logger.debug("span", name="topology", seconds=0.001)
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 2
    for line in lines:
        payload = json.loads(line)
        for key in ("ts", "level", "logger", "event"):
            assert key in payload
    first = json.loads(lines[0])
    assert first["event"] == "build.start"
    assert first["level"] == "info"
    assert first["logger"] == "repro.test"
    assert first["scenario"] == "small"
    assert first["jobs"] == 2


def test_level_filters_and_env_fallback(monkeypatch):
    stream = io.StringIO()
    monkeypatch.setenv(log.LEVEL_ENV, "error")
    log.configure(stream=stream)  # level=None -> env
    logger = log.get_logger("test")
    logger.warning("dropped")
    logger.error("kept")
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 1
    assert "kept" in lines[0]


def test_json_env_fallback(monkeypatch):
    stream = io.StringIO()
    monkeypatch.setenv(log.JSON_ENV, "1")
    log.configure(level="info", stream=stream)  # json_mode=None -> env
    log.get_logger("test").info("hello")
    assert json.loads(stream.getvalue().strip())["event"] == "hello"


def test_configure_replaces_handler_instead_of_stacking():
    first, second = io.StringIO(), io.StringIO()
    log.configure(level="info", json_mode=False, stream=first)
    log.configure(level="info", json_mode=False, stream=second)
    log.get_logger("test").info("once")
    assert first.getvalue() == ""
    assert second.getvalue().count("once") == 1
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1
    assert root.propagate is False


def test_configure_rejects_unknown_level():
    with pytest.raises(ValueError, match="unknown log level"):
        log.configure(level="loud", stream=io.StringIO())


def test_get_logger_prefixes_namespace():
    assert log.get_logger("datasets").name == "repro.datasets"
    assert log.get_logger("repro.cli").name == "repro.cli"


def test_progress_rate_limits(monkeypatch):
    stream = io.StringIO()
    log.configure(level="debug", json_mode=True, stream=stream)
    clock = {"now": 100.0}
    monkeypatch.setattr(log.time, "monotonic", lambda: clock["now"])
    progress = log.Progress(
        log.get_logger("test"), "build", total=50, interval_seconds=5.0
    )
    for _ in range(10):
        progress.update()  # no time passes: nothing emitted
    assert stream.getvalue() == ""
    clock["now"] += 6.0
    progress.update()
    progress.finish()
    lines = [json.loads(line) for line in stream.getvalue().strip().splitlines()]
    assert len(lines) == 2
    assert lines[0]["done"] == 11
    assert lines[0]["total"] == 50
    assert lines[1]["finished"] is True
    assert lines[1]["done"] == 11
