"""Run manifests: content, fingerprints, and the CLI end-to-end path."""

import json

import pytest

from repro.obs import runinfo
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def test_build_manifest_contents():
    from repro.harness.engine import config_fingerprint
    from repro.harness.scenarios import get_scenario

    registry = MetricsRegistry()
    registry.counter("cache.hit").inc(2)
    registry.counter("cache.miss").inc(1)
    tracer = Tracer()
    with tracer.span("reproduce"):
        tracer.record_span("topology", 0.5)

    platform_config = get_scenario("small").platform_config(7)
    manifest = runinfo.build_manifest(
        scenario="small",
        seed=7,
        jobs=2,
        experiments=["table1"],
        configs={"platform": platform_config},
        registry=registry,
        tracer=tracer,
        extra={"note": "unit"},
    )

    assert manifest["schema"] == runinfo.MANIFEST_SCHEMA
    assert manifest["run"] == {
        "scenario": "small", "seed": 7, "jobs": 2, "experiments": ["table1"],
    }
    # Manifest fingerprints use the same keying as the artifact cache, so
    # a manifest can be matched against cache entries.
    assert manifest["config_fingerprints"]["platform"] == config_fingerprint(
        "platform", platform_config
    )
    assert manifest["metrics"]["counters"] == {"cache.hit": 2, "cache.miss": 1}
    assert manifest["spans"]["summary"]["topology"]["count"] == 1
    assert manifest["spans"]["total_seconds"] > 0
    assert manifest["environment"]["python"]
    assert manifest["extra"] == {"note": "unit"}
    json.dumps(manifest)  # JSON-ready throughout


def test_write_run_report_creates_parents(tmp_path):
    target = tmp_path / "deep" / "nested" / "run.json"
    written = runinfo.write_run_report(target, {"schema": 1})
    assert written == target
    assert json.loads(target.read_text()) == {"schema": 1}


class TestReproduceEndToEnd:
    @pytest.fixture()
    def run(self, tmp_path, capsys):
        """One small reproduce run with every observability output on."""
        from repro.__main__ import main
        from repro.harness import scenarios

        # Drop memoized builds so the run actually exercises (and spans)
        # the platform/dataset construction paths.
        scenarios.clear_cache()
        trace_path = tmp_path / "trace.json"
        report_path = tmp_path / "run.json"
        code = main([
            "reproduce", "--scenario", "small", "--experiments", "table1",
            "--log-json", "--log-level", "info",
            "--trace-out", str(trace_path),
            "--run-report", str(report_path),
        ])
        captured = capsys.readouterr()
        assert code == 0
        return {
            "trace": json.loads(trace_path.read_text()),
            "manifest": json.loads(report_path.read_text()),
            "stdout": captured.out,
            "stderr": captured.err,
        }

    def test_reports_still_on_stdout(self, run):
        assert "Traceroute completeness summary" in run["stdout"]
        # No --timings flag: no timing table, even though spans recorded.
        assert "stage timings" not in run["stdout"]

    def test_json_log_lines_on_stderr(self, run):
        lines = [line for line in run["stderr"].splitlines() if line.strip()]
        assert lines, "expected JSON log lines on stderr"
        events = []
        for line in lines:
            payload = json.loads(line)  # every line is one JSON object
            for key in ("ts", "level", "logger", "event"):
                assert key in payload
            events.append(payload["event"])
        assert "reproduce.start" in events
        assert "reproduce.done" in events

    def test_chrome_trace_structure_and_coverage(self, run):
        events = run["trace"]["traceEvents"]
        names = [event["name"] for event in events]
        assert "reproduce" in names
        assert "experiment:table1" in names
        root = next(e for e in events if e["name"] == "reproduce")
        children = [
            e for e in events
            if e["args"].get("parent_id") == root["args"]["span_id"]
        ]
        assert children, "pipeline stages should nest under the root span"
        covered = sum(e["dur"] for e in children)
        assert covered >= 0.9 * root["dur"]

    def test_manifest_contents(self, run):
        manifest = run["manifest"]
        assert manifest["schema"] == 1
        assert manifest["run"]["scenario"] == "small"
        assert manifest["run"]["experiments"] == ["table1"]
        for name in ("platform", "longterm"):
            fingerprint = manifest["config_fingerprints"][name]
            assert isinstance(fingerprint, str) and len(fingerprint) == 32
        counters = manifest["metrics"]["counters"]
        for name in ("cache.hit", "cache.miss", "cache.corrupt", "cache.store"):
            assert name in counters  # always reported, even if zero
        assert counters["traceroute.samples"] > 0
        assert counters["dataset.longterm.pairs"] > 0
        summary = manifest["spans"]["summary"]
        assert "experiment:table1" in summary
        assert manifest["spans"]["coverage"] >= 0.9
