"""Tests for the delay model."""

import numpy as np
import pytest

from repro.measurement.congestionmodel import CongestionEvent, CongestionSchedule
from repro.measurement.rttmodel import DelayModel, DelayParams
from repro.net.ip import IPVersion


@pytest.fixture(scope="module")
def realization(platform):
    src, dst = platform.server_pairs()[0]
    return platform.realization(src, dst, IPVersion.V4, 0)


class TestBaseline:
    def test_base_rtt_positive_and_monotone(self, realization):
        model = DelayModel()
        cumulative = model.base_rtt_to_hops(realization)
        assert cumulative[0] > 0.0
        assert np.all(np.diff(cumulative) > 0.0)
        assert model.base_rtt(realization) == pytest.approx(cumulative[-1])

    def test_base_rtt_deterministic(self, realization):
        model = DelayModel()
        assert model.base_rtt(realization) == model.base_rtt(realization)

    def test_stretch_within_configured_range(self, realization):
        params = DelayParams()
        model = DelayModel(params)
        one_way = model.segment_one_way_ms(realization)
        for hop, delay in zip(realization.hops, one_way):
            assert delay >= params.min_segment_one_way_ms

    def test_longer_distance_longer_delay(self, realization):
        model = DelayModel()
        one_way = model.segment_one_way_ms(realization)
        distances = np.array([hop.distance_km for hop in realization.hops])
        big = distances > 2000
        small = distances < 50
        if big.any() and small.any():
            assert one_way[big].min() > one_way[small].max()


class TestNoise:
    def test_noise_nonnegative(self):
        model = DelayModel()
        noise = model.noise_series(np.random.default_rng(1), 5000, IPVersion.V4)
        assert (noise >= 0.0).all()

    def test_v6_noisier_than_v4(self):
        model = DelayModel()
        rng = np.random.default_rng(2)
        v4 = model.noise_series(rng, 20000, IPVersion.V4)
        rng = np.random.default_rng(2)
        v6 = model.noise_series(rng, 20000, IPVersion.V6)
        assert np.median(v6) > np.median(v4)

    def test_spikes_present_at_configured_rate(self):
        params = DelayParams(spike_probability=0.05, spike_mean_ms=100.0)
        model = DelayModel(params)
        noise = model.noise_series(np.random.default_rng(3), 20000, IPVersion.V4)
        spike_fraction = np.mean(noise > 50.0)
        assert 0.02 < spike_fraction < 0.09

    def test_no_spikes_when_disabled(self):
        params = DelayParams(spike_probability=0.0)
        model = DelayModel(params)
        noise = model.noise_series(np.random.default_rng(4), 20000, IPVersion.V4)
        assert noise.max() < 50.0


class TestSeries:
    def test_rtt_series_above_baseline(self, realization):
        model = DelayModel()
        times = np.arange(0.0, 24.0, 0.25)
        series = model.rtt_series(realization, times, np.random.default_rng(5))
        assert (series >= model.base_rtt(realization)).all()

    def test_congestion_adds_diurnal(self, realization):
        model = DelayModel(DelayParams(noise_scale_ms=0.01, spike_probability=0.0))
        key = realization.segment_keys[1]
        event = CongestionEvent(
            amplitude_ms=40.0, start_hour=0.0, end_hour=240.0,
            peak_local_hour=12.0, width_hours=8.0, longitude=0.0,
        )
        schedule = CongestionSchedule(events={key: (event,)})
        times = np.arange(0.0, 240.0, 0.5)
        quiet = model.rtt_series(realization, times, np.random.default_rng(6))
        busy = model.rtt_series(realization, times, np.random.default_rng(6), schedule)
        lift = busy - quiet
        assert lift.max() == pytest.approx(40.0, abs=1.0)
        assert lift.min() == pytest.approx(0.0, abs=1.0)

    def test_hop_matrix_shape_and_order(self, realization):
        model = DelayModel()
        times = np.arange(0.0, 12.0, 0.5)
        matrix = model.hop_rtt_matrix(realization, times, np.random.default_rng(7))
        assert matrix.shape == (len(realization.hops), times.size)
        # Baselines increase along the path; row means should too (noise is
        # small relative to propagation for long paths).
        row_means = matrix.mean(axis=1)
        assert row_means[-1] > row_means[0]

    def test_hop_matrix_congestion_cumulative(self, realization):
        model = DelayModel(DelayParams(noise_scale_ms=0.01, spike_probability=0.0))
        key = realization.segment_keys[2]
        event = CongestionEvent(
            amplitude_ms=30.0, start_hour=0.0, end_hour=48.0,
            peak_local_hour=12.0, width_hours=8.0, longitude=0.0,
        )
        schedule = CongestionSchedule(events={key: (event,)})
        times = np.array([12.0])  # peak hour
        matrix = model.hop_rtt_matrix(
            realization, times, np.random.default_rng(8), schedule
        )
        base = model.base_rtt_to_hops(realization)
        lifted = matrix[:, 0] - base
        # Hops before the congested segment are unaffected; from it onward
        # everything carries the bump.
        assert lifted[1] < 5.0
        assert lifted[2] == pytest.approx(30.0, abs=2.0)
        assert lifted[-1] == pytest.approx(30.0, abs=2.0)


class TestValidation:
    def test_bad_stretch(self):
        with pytest.raises(ValueError):
            DelayModel(DelayParams(stretch_min=0.9))

    def test_bad_spike_probability(self):
        with pytest.raises(ValueError):
            DelayModel(DelayParams(spike_probability=1.5))

    def test_bad_noise(self):
        with pytest.raises(ValueError):
            DelayModel(DelayParams(noise_shape=0.0))
