"""Tests for the ping engine."""

import numpy as np
import pytest

from repro.measurement.ping import ping_series
from repro.measurement.rttmodel import DelayModel
from repro.net.ip import IPVersion


@pytest.fixture(scope="module")
def realization(platform):
    src, dst = platform.server_pairs()[1]
    return platform.realization(src, dst, IPVersion.V4, 0)


class TestPingSeries:
    def test_shape_and_positivity(self, realization):
        times = np.arange(0.0, 24.0 * 7, 0.25)
        rtts = ping_series(realization, times, np.random.default_rng(1))
        assert rtts.shape == times.shape
        finite = rtts[np.isfinite(rtts)]
        assert (finite > 0).all()

    def test_loss_marks_nan(self, realization):
        times = np.arange(0.0, 24.0 * 7, 0.25)
        rtts = ping_series(
            realization, times, np.random.default_rng(2), loss_probability=0.2
        )
        loss_rate = np.mean(np.isnan(rtts))
        assert 0.1 < loss_rate < 0.3

    def test_zero_loss(self, realization):
        times = np.arange(0.0, 24.0, 0.25)
        rtts = ping_series(
            realization, times, np.random.default_rng(3), loss_probability=0.0
        )
        assert np.isfinite(rtts).all()

    def test_invalid_loss_probability(self, realization):
        with pytest.raises(ValueError):
            ping_series(
                realization, np.array([0.0]), np.random.default_rng(4),
                loss_probability=2.0,
            )

    def test_baseline_consistent_with_traceroute(self, platform, realization):
        """Pings and traceroutes share the delay model, so their medians
        agree (the paper uses them interchangeably for end-to-end RTT)."""
        times = np.arange(0.0, 24.0 * 3, 0.25)
        pings = ping_series(
            realization, times, platform.rng("ping-test"),
            delay_model=platform.delay_model, congestion=platform.congestion,
        )
        base = platform.delay_model.base_rtt(realization)
        median = np.nanmedian(pings)
        assert median == pytest.approx(base, rel=0.25)

    def test_congestion_visible_in_pings(self, platform):
        """Pings over a congested path show a larger p95-p5 spread."""
        model = DelayModel()
        congested_keys = set(platform.congestion.congested_keys())
        target = None
        for src, dst in platform.server_pairs():
            realization = platform.realization(src, dst, IPVersion.V4, 0)
            if realization is None:
                continue
            active = [
                key for key in realization.segment_keys
                if key in congested_keys
                and any(
                    event.start_hour < 24.0 * 7
                    for event in platform.congestion.events[key]
                )
            ]
            if active:
                target = realization
                break
        if target is None:
            pytest.skip("no congested path active in the first week")
        times = np.arange(0.0, 24.0 * 7, 0.25)
        quiet = ping_series(target, times, np.random.default_rng(5), delay_model=model)
        busy = ping_series(
            target, times, np.random.default_rng(5), delay_model=model,
            congestion=platform.congestion,
        )
        def spread(values):
            finite = values[np.isfinite(values)]
            return np.percentile(finite, 95) - np.percentile(finite, 5)
        assert spread(busy) > spread(quiet)
