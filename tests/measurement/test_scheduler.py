"""Tests for campaign grids."""

import numpy as np
import pytest

from repro.measurement.scheduler import (
    LONG_TERM_PERIOD_HOURS,
    PING_PERIOD_HOURS,
    SHORT_TRACE_PERIOD_HOURS,
    CampaignGrid,
)


class TestGrid:
    def test_over_days(self):
        grid = CampaignGrid.over_days(7.0, PING_PERIOD_HOURS)
        assert grid.rounds == 672  # the paper's 672 possible pings per week
        assert grid.duration_hours == pytest.approx(7 * 24.0)

    def test_long_term_rounds(self):
        grid = CampaignGrid.over_days(485.0, LONG_TERM_PERIOD_HOURS)
        assert grid.rounds == 3880

    def test_times_uniform(self):
        grid = CampaignGrid(start_hour=5.0, period_hours=0.5, rounds=10)
        times = grid.times()
        assert times[0] == 5.0
        assert np.allclose(np.diff(times), 0.5)
        assert times.size == 10

    def test_end_hour(self):
        grid = CampaignGrid(start_hour=0.0, period_hours=2.0, rounds=5)
        assert grid.end_hour == 10.0

    def test_round_index_clipping(self):
        grid = CampaignGrid(start_hour=0.0, period_hours=1.0, rounds=10)
        assert grid.round_index(-5.0) == 0
        assert grid.round_index(3.5) == 3
        assert grid.round_index(99.0) == 9

    def test_subsample(self):
        grid = CampaignGrid.over_days(1.0, SHORT_TRACE_PERIOD_HOURS)
        coarse = grid.subsample(6)  # 30 minutes -> 3 hours
        assert coarse.period_hours == pytest.approx(3.0)
        assert coarse.rounds == 8
        assert set(coarse.times()) <= set(grid.times())

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignGrid(start_hour=0.0, period_hours=0.0, rounds=5)
        with pytest.raises(ValueError):
            CampaignGrid(start_hour=0.0, period_hours=1.0, rounds=0)
        with pytest.raises(ValueError):
            CampaignGrid(start_hour=0.0, period_hours=1.0, rounds=5).subsample(0)
