"""Tests for path realization and observed-AS-path reconstruction."""

import pytest

from repro.measurement.realization import (
    UNKNOWN_ASN,
    observed_as_path,
    realize_path,
    segment_seed,
)
from repro.net.ip import IPVersion


class TestObservedASPath:
    def test_collapses_consecutive_duplicates(self):
        assert observed_as_path(1, [1, 1, 2, 2, 3]) == (1, 2, 3)

    def test_imputes_interior_gap(self):
        assert observed_as_path(1, [1, None, 1, 2]) == (1, 2)

    def test_gap_between_different_ases_stays_unknown(self):
        assert observed_as_path(1, [1, None, 2]) == (1, UNKNOWN_ASN, 2)

    def test_consecutive_unknowns_collapse(self):
        assert observed_as_path(1, [1, None, None, 2]) == (1, UNKNOWN_ASN, 2)

    def test_trailing_gap_stays_unknown(self):
        assert observed_as_path(1, [1, 2, None]) == (1, 2, UNKNOWN_ASN)

    def test_run_imputation_requires_both_sides(self):
        # Left side 2, right side 3: cannot impute the run.
        assert observed_as_path(1, [2, None, None, 3]) == (1, 2, UNKNOWN_ASN, 3)

    def test_source_asn_always_first(self):
        assert observed_as_path(9, [5, 5, 6])[0] == 9

    def test_empty_hop_list(self):
        assert observed_as_path(7, []) == (7,)

    def test_all_unresponsive(self):
        assert observed_as_path(7, [None, None]) == (7, UNKNOWN_ASN)


class TestSegmentSeed:
    def test_stable(self):
        key = ("x", 42)
        assert segment_seed(key) == segment_seed(key)

    def test_salt_changes_seed(self):
        key = ("x", 42)
        assert segment_seed(key, "stretch") != segment_seed(key, "noise")

    def test_different_keys_differ(self):
        assert segment_seed(("x", 1)) != segment_seed(("x", 2))

    def test_nonnegative_63_bit(self):
        seed = segment_seed(("i", 100, ("A", "B"), ("C", "D")))
        assert 0 <= seed < (1 << 63)


class TestRealizePath:
    def _pair(self, platform):
        return platform.server_pairs()[0]

    def test_endpoints_and_ordering(self, platform):
        src, dst = self._pair(platform)
        candidates = platform.candidates(src.asn, dst.asn, IPVersion.V4)
        realization = realize_path(
            platform.graph, platform.plan, platform.topology,
            src, dst, candidates[0].path, IPVersion.V4,
        )
        assert realization is not None
        assert realization.hops[-1].is_destination
        assert realization.hops[-1].address == dst.ipv4
        assert realization.src_asn == src.asn
        assert realization.dst_asn == dst.asn

    def test_hop_owners_follow_as_path(self, platform):
        src, dst = self._pair(platform)
        candidates = platform.candidates(src.asn, dst.asn, IPVersion.V4)
        realization = realize_path(
            platform.graph, platform.plan, platform.topology,
            src, dst, candidates[0].path, IPVersion.V4,
        )
        owner_sequence = []
        for hop in realization.hops:
            if not owner_sequence or owner_sequence[-1] != hop.owner:
                owner_sequence.append(hop.owner)
        assert tuple(owner_sequence) == realization.as_path

    def test_distances_nonnegative(self, platform):
        src, dst = self._pair(platform)
        realization = platform.realization(src, dst, IPVersion.V4, 0)
        for hop in realization.hops:
            assert hop.distance_km >= 0.0

    def test_mismatched_endpoints_rejected(self, platform):
        src, dst = self._pair(platform)
        with pytest.raises(ValueError):
            realize_path(
                platform.graph, platform.plan, platform.topology,
                src, dst, (src.asn, src.asn + 1), IPVersion.V4,
            )

    def test_observed_path_matches_ground_truth_mostly(self, platform):
        """Without artifacts, the observed path equals the true AS path up
        to mapping quirks (provider-allocated addresses collapse; IXP ASNs
        and unknown tokens may appear)."""
        agreements = total = 0
        for src, dst in platform.server_pairs()[:40]:
            realization = platform.realization(src, dst, IPVersion.V4, 0)
            if realization is None:
                continue
            total += 1
            if realization.observed_path_complete == realization.as_path:
                agreements += 1
        assert total > 0
        assert agreements / total > 0.6

    def test_v6_realization_uses_v6_addresses(self, platform):
        for src, dst in platform.server_pairs(dual_stack_only=True)[:10]:
            realization = platform.realization(src, dst, IPVersion.V6, 0)
            if realization is None:
                continue
            for hop in realization.hops:
                assert hop.address.version is IPVersion.V6

    def test_segment_keys_one_per_hop(self, platform):
        src, dst = self._pair(platform)
        realization = platform.realization(src, dst, IPVersion.V4, 0)
        assert len(realization.segment_keys) == len(realization.hops)
        assert realization.segment_keys[0][0] == "h"
        assert realization.segment_keys[-1][0] == "h"

    def test_miss_variant_differs_only_at_gap(self, platform):
        src, dst = self._pair(platform)
        realization = platform.realization(src, dst, IPVersion.V4, 0)
        complete = realization.observed_path_complete
        # Missing the destination hop cannot happen (servers answer), but
        # missing any interior hop yields a path no longer than complete+1.
        for hop_index in range(len(realization.hops) - 1):
            variant = realization.observed_path_with_miss(hop_index)
            assert abs(len(variant) - len(complete)) <= 2
