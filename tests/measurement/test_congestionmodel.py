"""Tests for congestion processes and assignment."""

import numpy as np
import pytest

from repro.measurement.congestionmodel import (
    CongestionConfig,
    CongestionEvent,
    CongestionSchedule,
    SegmentGeo,
    assign_congestion,
)
from repro.net.geo import GeoLocation

NYC = GeoLocation("New York", "US", "NA", 40.71, -74.01)
LA = GeoLocation("Los Angeles", "US", "NA", 34.05, -118.24)
TOKYO = GeoLocation("Tokyo", "JP", "AS", 35.68, 139.69)
LONDON = GeoLocation("London", "GB", "EU", 51.51, -0.13)


def _event(**overrides):
    defaults = dict(
        amplitude_ms=30.0, start_hour=0.0, end_hour=240.0,
        peak_local_hour=20.0, width_hours=8.0, longitude=0.0,
    )
    defaults.update(overrides)
    return CongestionEvent(**defaults)


class TestEvent:
    def test_zero_outside_active_window(self):
        event = _event(start_hour=100.0, end_hour=120.0)
        times = np.array([50.0, 130.0])
        assert (event.contribution(times) == 0.0).all()

    def test_peaks_at_local_peak_hour(self):
        event = _event(longitude=0.0, peak_local_hour=20.0)
        times = np.arange(0.0, 24.0, 0.1)
        contributions = event.contribution(times)
        peak_time = times[np.argmax(contributions)]
        assert peak_time == pytest.approx(20.0, abs=0.2)
        assert contributions.max() == pytest.approx(30.0, abs=0.1)

    def test_timezone_shifts_peak(self):
        # 90 degrees east: local time is UTC+6, so the UTC peak is 6h earlier.
        event = _event(longitude=90.0, peak_local_hour=20.0)
        times = np.arange(0.0, 24.0, 0.1)
        peak_time = times[np.argmax(event.contribution(times))]
        assert peak_time == pytest.approx(14.0, abs=0.2)

    def test_bump_width(self):
        event = _event(width_hours=6.0, peak_local_hour=12.0)
        times = np.arange(0.0, 24.0, 0.05)
        active = event.contribution(times) > 0.0
        assert active.sum() * 0.05 == pytest.approx(6.0, abs=0.2)

    def test_daily_repetition(self):
        event = _event()
        day_one = event.contribution(np.arange(0.0, 24.0, 0.5))
        day_two = event.contribution(np.arange(24.0, 48.0, 0.5))
        assert np.allclose(day_one, day_two)


class TestSchedule:
    def test_series_sums_events(self):
        key = ("x", 1)
        schedule = CongestionSchedule(events={key: (_event(), _event())})
        times = np.array([20.0])
        assert schedule.series(key, times)[0] == pytest.approx(60.0, abs=0.5)

    def test_path_series_only_counts_present_keys(self):
        schedule = CongestionSchedule(events={("x", 1): (_event(),)})
        times = np.array([20.0])
        on_path = schedule.path_series([("x", 1), ("x", 2)], times)
        off_path = schedule.path_series([("x", 2)], times)
        assert on_path[0] > 0.0
        assert off_path[0] == 0.0

    def test_segment_matrix_cumulative(self):
        schedule = CongestionSchedule(events={("x", 2): (_event(),)})
        keys = [("x", 1), ("x", 2), ("x", 3)]
        matrix = schedule.segment_matrix(keys, np.array([20.0]))
        assert matrix[0, 0] == 0.0
        assert matrix[1, 0] > 0.0
        assert matrix[2, 0] == matrix[1, 0]

    def test_congested_keys(self):
        schedule = CongestionSchedule(events={("x", 1): (_event(),), ("x", 2): ()})
        assert schedule.congested_keys() == [("x", 1)]
        assert schedule.is_congested(("x", 1))
        assert not schedule.is_congested(("x", 2))


class TestSegmentGeo:
    def test_domestic_us(self):
        assert SegmentGeo("i", NYC, LA).domestic_us
        assert not SegmentGeo("i", NYC, TOKYO).domestic_us

    def test_transcontinental(self):
        assert SegmentGeo("x", NYC, TOKYO).transcontinental
        assert not SegmentGeo("x", NYC, LA).transcontinental

    def test_longitude_midpoint(self):
        geo = SegmentGeo("x", NYC, LONDON)
        assert geo.longitude == pytest.approx((NYC.longitude + LONDON.longitude) / 2)


class TestAssignment:
    def _segments(self, count=200):
        segments = {}
        crossings = {}
        for index in range(count):
            kind = "i" if index % 2 == 0 else "x"
            key = (kind, index)
            segments[key] = SegmentGeo(kind, NYC, LA, peering=(index % 4 == 1))
            crossings[key] = 1 + index % 30
        return segments, crossings

    def test_fractions_roughly_honored(self):
        segments, crossings = self._segments(2000)
        config = CongestionConfig(
            fraction_intra_congested=0.10, fraction_inter_congested=0.10
        )
        schedule = assign_congestion(
            segments, crossings, 24.0 * 100, config, np.random.default_rng(1)
        )
        congested = len(schedule.congested_keys())
        assert 120 <= congested <= 280  # ~10% of 2000, binomial slack

    def test_zero_fraction_means_no_congestion(self):
        segments, crossings = self._segments()
        config = CongestionConfig(
            fraction_intra_congested=0.0, fraction_inter_congested=0.0
        )
        schedule = assign_congestion(
            segments, crossings, 24.0 * 100, config, np.random.default_rng(2)
        )
        assert schedule.congested_keys() == []

    def test_us_amplitudes_near_calibration(self):
        segments = {("i", 0): SegmentGeo("i", NYC, LA)}
        config = CongestionConfig(fraction_intra_congested=1.0)
        amplitudes = []
        for seed in range(40):
            schedule = assign_congestion(
                segments, {("i", 0): 1}, 24.0 * 100, config, np.random.default_rng(seed)
            )
            amplitudes.extend(
                event.amplitude_ms for event in schedule.events[("i", 0)]
            )
        median = float(np.median(amplitudes))
        assert 20.0 <= median <= 30.0

    def test_transcontinental_amplitudes_higher(self):
        config = CongestionConfig(fraction_intra_congested=1.0)
        us, trans = [], []
        for seed in range(40):
            rng = np.random.default_rng(seed)
            schedule = assign_congestion(
                {("i", 0): SegmentGeo("i", NYC, LA)}, {}, 2400.0, config, rng
            )
            us.extend(e.amplitude_ms for e in schedule.events[("i", 0)])
            rng = np.random.default_rng(seed)
            schedule = assign_congestion(
                {("i", 0): SegmentGeo("i", NYC, TOKYO)}, {}, 2400.0, config, rng
            )
            # Transcontinental segments are down-weighted and may be skipped.
            trans.extend(
                e.amplitude_ms for e in schedule.events.get(("i", 0), ())
            )
        assert len(trans) >= 10
        assert np.median(trans) > 1.5 * np.median(us)

    def test_events_within_window(self):
        segments, crossings = self._segments()
        schedule = assign_congestion(
            segments, crossings, 24.0 * 50,
            CongestionConfig(fraction_intra_congested=0.5, fraction_inter_congested=0.5),
            np.random.default_rng(3),
        )
        for events in schedule.events.values():
            for event in events:
                assert 0.0 <= event.start_hour < event.end_hour <= 24.0 * 50

    def test_validation(self):
        with pytest.raises(ValueError):
            CongestionConfig(fraction_intra_congested=1.5).validate()
        with pytest.raises(ValueError):
            CongestionConfig(episodes_range=(2, 1)).validate()
