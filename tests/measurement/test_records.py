"""Tests for measurement records."""

from repro.measurement.records import HopObservation, PingRecord, TracerouteRecord
from repro.net.ip import IPAddress, IPVersion


class TestHopObservation:
    def test_responded(self):
        hop = HopObservation(
            ttl=1, address=IPAddress.parse("10.0.0.1"), rtt_ms=1.5, mapped_asn=100
        )
        assert hop.responded
        assert "AS100" in str(hop)

    def test_unresponsive_renders_star(self):
        hop = HopObservation(ttl=3, address=None, rtt_ms=None, mapped_asn=None)
        assert not hop.responded
        assert "*" in str(hop)

    def test_unmapped_renders_question(self):
        hop = HopObservation(
            ttl=2, address=IPAddress.parse("10.0.0.2"), rtt_ms=2.0, mapped_asn=None
        )
        assert "AS?" in str(hop)


class TestTracerouteRecord:
    def _record(self, hops):
        return TracerouteRecord(
            src_server_id=0,
            dst_server_id=1,
            src_address=IPAddress.parse("10.0.0.1"),
            dst_address=IPAddress.parse("10.0.0.9"),
            version=IPVersion.V4,
            time_hours=1.0,
            hops=tuple(hops),
            rtt_ms=12.5,
            reached=True,
            observed_as_path=(100, 200),
        )

    def test_unresponsive_detection(self):
        responsive = HopObservation(1, IPAddress.parse("10.0.0.2"), 1.0, 100)
        silent = HopObservation(2, None, None, None)
        assert not self._record([responsive]).has_unresponsive_hop
        assert self._record([responsive, silent]).has_unresponsive_hop

    def test_render(self):
        record = self._record([HopObservation(1, IPAddress.parse("10.0.0.2"), 1.0, 100)])
        text = record.render()
        assert "rtt=12.50 ms" in text
        assert "10.0.0.9" in text


class TestPingRecord:
    def test_loss(self):
        assert PingRecord(0, 1, IPVersion.V4, 0.0, None).lost
        assert not PingRecord(0, 1, IPVersion.V4, 0.0, 5.0).lost
