"""Tests for the traceroute engine (single probes and vectorized series)."""

import numpy as np
import pytest

from repro.measurement.traceroute import (
    ArtifactParams,
    TraceOutcome,
    TracerouteEngine,
)
from repro.net.ip import IPVersion


@pytest.fixture(scope="module")
def realization(platform):
    src, dst = platform.server_pairs()[0]
    return platform.realization(src, dst, IPVersion.V4, 0)


@pytest.fixture(scope="module")
def clean_engine():
    """Engine with artifacts off: every trace completes cleanly."""
    return TracerouteEngine(
        artifacts=ArtifactParams(
            incomplete_probability=0.0,
            loop_probability_classic_lb=0.0,
            loop_probability_classic_lb_v6=0.0,
            loop_probability_classic=0.0,
            loop_probability_paris=0.0,
        )
    )


class TestSingleTrace:
    def test_complete_record_shape(self, clean_engine, realization):
        record = clean_engine.trace(realization, 5.0, np.random.default_rng(1))
        assert record.reached
        assert record.rtt_ms is not None and record.rtt_ms > 0
        assert len(record.hops) == len(realization.hops)
        assert record.hops[0].ttl == 1
        assert record.hops[-1].address == realization.hops[-1].address

    def test_render_contains_hops(self, clean_engine, realization):
        record = clean_engine.trace(realization, 5.0, np.random.default_rng(2))
        text = record.render()
        assert "traceroute to" in text
        assert str(realization.hops[-1].address) in text

    def test_incomplete_trace(self, realization):
        engine = TracerouteEngine(artifacts=ArtifactParams(incomplete_probability=1.0))
        record = engine.trace(realization, 5.0, np.random.default_rng(3))
        assert not record.reached
        assert record.rtt_ms is None
        assert record.observed_as_path == ()
        assert len(record.hops) < len(realization.hops)

    def test_unresponsive_hops_render_as_missing(self, clean_engine, realization):
        # Probe many times: some hops on the session path never answer.
        any_missing = False
        for seed in range(20):
            record = clean_engine.trace(realization, 5.0, np.random.default_rng(seed))
            if record.has_unresponsive_hop:
                any_missing = True
                for hop in record.hops:
                    if not hop.responded:
                        assert hop.address is None and hop.rtt_ms is None
        # The session path may genuinely have all-perfect routers; only
        # assert structural consistency in that case.
        assert any_missing or all(
            hop.respond_probability > 0.9 for hop in realization.hops
        )


class TestSampleSeries:
    def test_all_outcomes_partition_samples(self, platform, realization):
        times = np.arange(0.0, 24.0 * 30, 3.0)
        series = platform.engine.sample_series(
            realization, times, np.random.default_rng(4), paris_start_hour=None
        )
        assert series.rtt_ms.shape == times.shape
        assert set(np.unique(series.outcome)) <= {
            int(TraceOutcome.COMPLETE), int(TraceOutcome.MISSING_AS),
            int(TraceOutcome.MISSING_IP), int(TraceOutcome.LOOP),
            int(TraceOutcome.INCOMPLETE),
        }

    def test_incomplete_samples_have_nan_rtt(self, platform, realization):
        times = np.arange(0.0, 24.0 * 60, 3.0)
        series = platform.engine.sample_series(
            realization, times, np.random.default_rng(5)
        )
        incomplete = series.outcome == int(TraceOutcome.INCOMPLETE)
        assert incomplete.any()
        assert np.isnan(series.rtt_ms[incomplete]).all()
        assert (series.variant_id[incomplete] == -1).all()

    def test_reached_samples_have_finite_rtt(self, platform, realization):
        times = np.arange(0.0, 24.0 * 60, 3.0)
        series = platform.engine.sample_series(
            realization, times, np.random.default_rng(6)
        )
        reached = series.outcome != int(TraceOutcome.INCOMPLETE)
        assert np.isfinite(series.rtt_ms[reached]).all()

    def test_variant_zero_is_complete_path(self, platform, realization):
        times = np.arange(0.0, 24.0, 3.0)
        series = platform.engine.sample_series(
            realization, times, np.random.default_rng(7)
        )
        assert series.variants[0] == realization.observed_path_complete

    def test_variant_ids_valid(self, platform, realization):
        times = np.arange(0.0, 24.0 * 90, 3.0)
        series = platform.engine.sample_series(
            realization, times, np.random.default_rng(8)
        )
        valid = series.variant_id[series.variant_id >= 0]
        assert valid.max(initial=0) < len(series.variants)

    def test_loop_variants_contain_repeats(self, platform):
        # Find a load-balanced path so classic traceroute can loop.
        engine = TracerouteEngine(
            delay_model=platform.delay_model,
            artifacts=ArtifactParams(
                incomplete_probability=0.0, loop_probability_classic_lb=1.0,
                loop_probability_classic=1.0,
            ),
        )
        src, dst = platform.server_pairs()[0]
        realization = platform.realization(src, dst, IPVersion.V4, 0)
        times = np.arange(0.0, 24.0, 3.0)
        series = engine.sample_series(realization, times, np.random.default_rng(9))
        looped = series.outcome == int(TraceOutcome.LOOP)
        assert looped.all()
        loop_path = series.variants[int(series.variant_id[0])]
        assert len(loop_path) != len(set(loop_path))

    def test_paris_eliminates_loops(self, platform, realization):
        engine = TracerouteEngine(
            delay_model=platform.delay_model,
            artifacts=ArtifactParams(
                incomplete_probability=0.0,
                loop_probability_classic_lb=0.5,
                loop_probability_classic=0.5,
                loop_probability_paris=0.0,
            ),
        )
        times = np.arange(0.0, 24.0 * 20, 3.0)
        classic = engine.sample_series(
            realization, times, np.random.default_rng(10), paris_start_hour=None
        )
        paris = engine.sample_series(
            realization, times, np.random.default_rng(10), paris_start_hour=0.0
        )
        classic_loops = (classic.outcome == int(TraceOutcome.LOOP)).sum()
        paris_loops = (paris.outcome == int(TraceOutcome.LOOP)).sum()
        assert classic_loops > 0
        assert paris_loops == 0

    def test_paris_transition_mid_series(self, platform, realization):
        engine = TracerouteEngine(
            delay_model=platform.delay_model,
            artifacts=ArtifactParams(
                incomplete_probability=0.0,
                loop_probability_classic_lb=1.0,
                loop_probability_classic=1.0,
                loop_probability_paris=0.0,
            ),
        )
        times = np.arange(0.0, 100.0, 1.0)
        series = engine.sample_series(
            realization, times, np.random.default_rng(11), paris_start_hour=50.0
        )
        before = series.outcome[times < 50.0]
        after = series.outcome[times >= 50.0]
        assert (before == int(TraceOutcome.LOOP)).all()
        assert (after != int(TraceOutcome.LOOP)).all()


class TestArtifactValidation:
    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TracerouteEngine(artifacts=ArtifactParams(incomplete_probability=1.2))
