"""Tests for the measurement-platform façade."""

import numpy as np
import pytest

from repro.measurement.platform import MeasurementPlatform, PlatformConfig
from repro.net.ip import IPVersion


class TestAssembly:
    def test_substrates_present(self, platform):
        assert platform.graph.ases
        assert platform.topology.routers
        assert platform.cdn.clusters
        assert platform.tables[IPVersion.V4].candidates
        assert platform.tables[IPVersion.V6].candidates

    def test_server_pairs_exclude_same_as(self, platform):
        for src, dst in platform.server_pairs():
            assert src.asn != dst.asn
            assert src.server_id != dst.server_id

    def test_dual_stack_filter(self, platform):
        for src, dst in platform.server_pairs(dual_stack_only=True):
            assert src.dual_stack and dst.dual_stack

    def test_epochs_cover_window(self, platform):
        src, dst = platform.server_pairs()[0]
        epochs = platform.epochs(src, dst, IPVersion.V4)
        assert epochs
        assert epochs[0].start_hour == 0.0
        assert epochs[-1].end_hour == pytest.approx(platform.config.duration_hours)

    def test_realization_cache_identity(self, platform):
        src, dst = platform.server_pairs()[0]
        first = platform.realization(src, dst, IPVersion.V4, 0)
        second = platform.realization(src, dst, IPVersion.V4, 0)
        assert first is second

    def test_out_of_range_candidate_is_none(self, platform):
        src, dst = platform.server_pairs()[0]
        assert platform.realization(src, dst, IPVersion.V4, 99) is None

    def test_rng_streams_independent_and_stable(self, platform):
        a1 = platform.rng("alpha").random(4)
        a2 = platform.rng("alpha").random(4)
        b = platform.rng("beta").random(4)
        assert np.allclose(a1, a2)
        assert not np.allclose(a1, b)

    def test_congested_keys_are_real_segments(self, platform):
        keys = set(platform.congested_segment_keys())
        if not keys:
            pytest.skip("seeded platform drew no congestion")
        all_keys = set()
        for src, dst in platform.server_pairs():
            realization = platform.realization(src, dst, IPVersion.V4, 0)
            if realization:
                all_keys.update(realization.segment_keys)
            realization = platform.realization(src, dst, IPVersion.V6, 0)
            if realization:
                all_keys.update(realization.segment_keys)
        assert keys <= all_keys

    def test_paris_start_hour(self, platform):
        expected = platform.config.duration_hours * 10.0 / 16.0
        assert platform.config.paris_start_hour == pytest.approx(expected)

    def test_paris_disabled(self):
        config = PlatformConfig(paris_adoption_fraction=None)
        assert config.paris_start_hour is None


class TestDeterminism:
    def test_identical_configs_identical_platforms(self):
        first = MeasurementPlatform(
            PlatformConfig(seed=21, cluster_count=6, duration_hours=24.0 * 30)
        )
        second = MeasurementPlatform(
            PlatformConfig(seed=21, cluster_count=6, duration_hours=24.0 * 30)
        )
        assert first.graph.edges() == second.graph.edges()
        assert [s.ipv4 for s in first.measurement_servers()] == [
            s.ipv4 for s in second.measurement_servers()
        ]
        src1, dst1 = first.server_pairs()[0]
        src2, dst2 = second.server_pairs()[0]
        assert first.epochs(src1, dst1, IPVersion.V4) == second.epochs(
            src2, dst2, IPVersion.V4
        )
        assert first.congested_segment_keys() == second.congested_segment_keys()

    def test_different_seed_differs(self):
        first = MeasurementPlatform(
            PlatformConfig(seed=1, cluster_count=6, duration_hours=24.0 * 30)
        )
        second = MeasurementPlatform(
            PlatformConfig(seed=2, cluster_count=6, duration_hours=24.0 * 30)
        )
        assert [s.ipv4 for s in first.measurement_servers()] != [
            s.ipv4 for s in second.measurement_servers()
        ]
