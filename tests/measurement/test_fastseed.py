"""The batched PCG64 seeding must be bit-identical to numpy's own.

``repro.measurement.fastseed`` replays SeedSequence's entropy-pool
mixing and PCG64's seeding recipe; every planned stream in the columnar
builders starts from a state it computed.  These tests pin the
replication against numpy directly, across word-count shapes, and cover
the defensive paths (self-check, stragglers, reference fallback).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.measurement import fastseed
from repro.obs import metrics as obs_metrics
from repro.measurement.fastseed import (
    RecycledGenerator,
    pcg64_states,
    replication_ok,
)


def _reference(entropy):
    raw = np.random.PCG64(np.random.SeedSequence(entropy)).state["state"]
    return int(raw["state"]), int(raw["inc"])


class TestReplication:
    def test_self_check_passes_on_this_numpy(self):
        assert replication_ok()

    @pytest.mark.parametrize("base_seed", [0, 1, 2**31 - 1, 2**63 + 11])
    def test_states_match_numpy(self, base_seed):
        rng = np.random.default_rng(np.random.SeedSequence([base_seed, 99]))
        digests = [
            int(value)
            for value in rng.integers(1, 2**64, size=64, dtype=np.uint64)
        ]
        states = pcg64_states(base_seed, digests)
        assert states == [_reference([base_seed, digest]) for digest in digests]

    def test_straggler_digests_match_numpy(self):
        # Digests whose high word is zero coerce to fewer entropy words
        # and take the scalar reference path inside pcg64_states.
        digests = [0, 1, 0xFFFFFFFF, 0x1_0000_0000, 2**64 - 1]
        states = pcg64_states(7, digests)
        assert states == [_reference([7, digest]) for digest in digests]

    def test_empty_batch(self):
        assert pcg64_states(3, []) == []

    def test_negative_base_seed_uses_reference_path(self):
        # SeedSequence would reject negative entropy; pcg64_states must
        # not feed it into the word coercion.  (No platform produces a
        # negative seed; the guard keeps the failure mode loud and
        # numpy-owned.)
        with pytest.raises(ValueError):
            pcg64_states(-1, [123])

    def test_failed_self_check_falls_back_to_reference(self, monkeypatch):
        monkeypatch.setattr(fastseed, "_replication_checked", False)
        digests = [12345, 2**63 + 5]
        assert pcg64_states(11, digests) == [
            _reference([11, digest]) for digest in digests
        ]


class TestRecycledGenerator:
    def test_draws_match_fresh_generator(self):
        recycled = RecycledGenerator()
        for digest in (17, 2**48 + 3, 2**63 - 1):
            (state, inc), = pcg64_states(5, [digest])
            shared = recycled.set(state, inc)
            fresh = np.random.Generator(
                np.random.PCG64(np.random.SeedSequence([5, digest]))
            )
            assert (
                shared.gamma(2.0, 3.0, size=16).tobytes()
                == fresh.gamma(2.0, 3.0, size=16).tobytes()
            )
            assert shared.random(8).tobytes() == fresh.random(8).tobytes()

    def test_reset_discards_buffered_bits(self):
        # A 32-bit draw leaves half a PCG64 output buffered; re-stating
        # the generator must clear it or the next stream's first draw
        # would consume stale bits.
        recycled = RecycledGenerator()
        (state, inc), = pcg64_states(2, [77])
        first = recycled.set(state, inc).integers(0, 2**32, size=3, dtype=np.uint32)
        again = recycled.set(state, inc).integers(0, 2**32, size=3, dtype=np.uint32)
        assert first.tobytes() == again.tobytes()


class TestSeedingTelemetry:
    def test_batched_and_straggler_streams_counted(self):
        registry = obs_metrics.get_registry()
        batched_before = registry.counter("fastseed.streams.batched").value
        reference_before = registry.counter("fastseed.streams.reference").value

        # Three common digests plus one straggler (zero high word).
        pcg64_states(9, [2**40 + 1, 2**50 + 7, 2**33, 5])

        assert registry.counter("fastseed.streams.batched").value == (
            batched_before + 3
        )
        assert registry.counter("fastseed.streams.reference").value == (
            reference_before + 1
        )

    def test_reference_fallback_counts_whole_batch(self, monkeypatch):
        monkeypatch.setattr(fastseed, "_replication_checked", False)
        registry = obs_metrics.get_registry()
        before = registry.counter("fastseed.streams.reference").value
        pcg64_states(11, [2**40 + 1, 2**40 + 2])
        assert registry.counter("fastseed.streams.reference").value == before + 2

    def test_selfcheck_outcome_counted_once(self, monkeypatch):
        monkeypatch.setattr(fastseed, "_replication_checked", None)
        registry = obs_metrics.get_registry()
        ok_before = registry.counter("fastseed.selfcheck.ok").value
        assert fastseed.replication_ok() is True
        assert fastseed.replication_ok() is True  # cached; no second count
        assert registry.counter("fastseed.selfcheck.ok").value == ok_before + 1

    def test_failed_selfcheck_is_loud(self, monkeypatch):
        monkeypatch.setattr(fastseed, "_replication_checked", None)
        monkeypatch.setattr(
            fastseed, "_batch_states", lambda entropies: [(0, 1)] * len(entropies)
        )
        registry = obs_metrics.get_registry()
        failed_before = registry.counter("fastseed.selfcheck.failed").value
        assert fastseed.replication_ok() is False
        assert registry.counter("fastseed.selfcheck.failed").value == (
            failed_before + 1
        )
