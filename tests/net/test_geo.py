"""Tests for geography, distances, and latency lower bounds."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.geo import (
    EARTH_RADIUS_KM,
    FIBER_REFRACTION_FACTOR,
    SPEED_OF_LIGHT_KM_PER_MS,
    GeoLocation,
    crtt_ms,
    fiber_rtt_ms,
    great_circle_km,
)

NYC = GeoLocation("New York", "US", "NA", 40.71, -74.01)
LONDON = GeoLocation("London", "GB", "EU", 51.51, -0.13)
SYDNEY = GeoLocation("Sydney", "AU", "OC", -33.87, 151.21)

_lat = st.floats(min_value=-90, max_value=90, allow_nan=False)
_lon = st.floats(min_value=-180, max_value=180, allow_nan=False)


class TestGeoLocation:
    def test_coordinate_validation(self):
        with pytest.raises(ValueError):
            GeoLocation("X", "XX", "NA", 91.0, 0.0)
        with pytest.raises(ValueError):
            GeoLocation("X", "XX", "NA", 0.0, -181.0)

    def test_str(self):
        assert str(NYC) == "New York, US"


class TestGreatCircle:
    def test_known_distance_nyc_london(self):
        # ~5570 km per published great-circle tables.
        distance = NYC.distance_km(LONDON)
        assert 5400 < distance < 5700

    def test_zero_for_same_point(self):
        assert NYC.distance_km(NYC) == pytest.approx(0.0)

    def test_antipodal_upper_bound(self):
        half_circumference = math.pi * EARTH_RADIUS_KM
        assert great_circle_km(0, 0, 0, 180) == pytest.approx(half_circumference, rel=1e-6)

    @given(_lat, _lon, _lat, _lon)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        forward = great_circle_km(lat1, lon1, lat2, lon2)
        backward = great_circle_km(lat2, lon2, lat1, lon1)
        assert forward == pytest.approx(backward, abs=1e-6)

    @given(_lat, _lon, _lat, _lon)
    def test_bounded_by_half_circumference(self, lat1, lon1, lat2, lon2):
        distance = great_circle_km(lat1, lon1, lat2, lon2)
        assert 0.0 <= distance <= math.pi * EARTH_RADIUS_KM + 1e-6


class TestLatencyBounds:
    def test_crtt_matches_distance(self):
        distance = NYC.distance_km(SYDNEY)
        assert crtt_ms(NYC, SYDNEY) == pytest.approx(
            2 * distance / SPEED_OF_LIGHT_KM_PER_MS
        )

    def test_crtt_zero_for_colocated(self):
        assert crtt_ms(NYC, NYC) == pytest.approx(0.0)

    def test_fiber_slower_than_free_space(self):
        distance = NYC.distance_km(LONDON)
        assert fiber_rtt_ms(distance) > crtt_ms(NYC, LONDON)

    def test_fiber_refraction_ratio(self):
        assert fiber_rtt_ms(1000.0) == pytest.approx(
            2 * 1000.0 / (SPEED_OF_LIGHT_KM_PER_MS * FIBER_REFRACTION_FACTOR)
        )

    def test_stretch_scales_linearly(self):
        assert fiber_rtt_ms(1000.0, path_stretch=2.0) == pytest.approx(
            2.0 * fiber_rtt_ms(1000.0)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fiber_rtt_ms(-1.0)
        with pytest.raises(ValueError):
            fiber_rtt_ms(100.0, path_stretch=0.9)
