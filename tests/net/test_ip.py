"""Tests for IP address values, parsing and formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ip import MAX_IPV4, MAX_IPV6, IPAddress, IPVersion


class TestIPVersion:
    def test_bits(self):
        assert IPVersion.V4.bits == 32
        assert IPVersion.V6.bits == 128

    def test_max_value(self):
        assert IPVersion.V4.max_value == MAX_IPV4
        assert IPVersion.V6.max_value == MAX_IPV6

    def test_integer_values_match_protocol_numbers(self):
        assert int(IPVersion.V4) == 4
        assert int(IPVersion.V6) == 6


class TestConstruction:
    def test_v4_helper(self):
        address = IPAddress.v4(0x01020304)
        assert address.version is IPVersion.V4
        assert str(address) == "1.2.3.4"

    def test_v6_helper(self):
        address = IPAddress.v6(1)
        assert address.version is IPVersion.V6
        assert str(address) == "::1"

    def test_version_coerced_from_int(self):
        assert IPAddress(4, 0).version is IPVersion.V4

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            IPAddress.v4(-1)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            IPAddress.v4(MAX_IPV4 + 1)
        with pytest.raises(ValueError):
            IPAddress.v6(MAX_IPV6 + 1)

    def test_addition(self):
        assert str(IPAddress.parse("10.0.0.1") + 4) == "10.0.0.5"

    def test_ordering_by_version_then_value(self):
        assert IPAddress.v4(MAX_IPV4) < IPAddress.v6(0)
        assert IPAddress.v4(1) < IPAddress.v4(2)


class TestV4Text:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("0.0.0.0", 0),
            ("255.255.255.255", MAX_IPV4),
            ("192.0.2.1", (192 << 24) | (2 << 8) | 1),
        ],
    )
    def test_parse(self, text, value):
        assert IPAddress.parse(text).value == value

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "01.2.3.4", "a.b.c.d", ""]
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            IPAddress.parse(bad)

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_roundtrip(self, value):
        assert IPAddress.parse(str(IPAddress.v4(value))).value == value


class TestV6Text:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("::", "::"),
            ("::1", "::1"),
            ("2001:db8::", "2001:db8::"),
            ("2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"),
            ("1:0:0:2:0:0:0:3", "1:0:0:2::3"),  # longest zero run compressed
            ("fe80:0:0:0:1:2:3:4", "fe80::1:2:3:4"),
        ],
    )
    def test_parse_and_canonical_format(self, text, expected):
        assert str(IPAddress.parse(text)) == expected

    @pytest.mark.parametrize(
        "bad",
        ["1::2::3", ":::", "12345::", "1:2:3:4:5:6:7", "1:2:3:4:5:6:7:8:9", "g::1"],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            IPAddress.parse(bad)

    def test_no_compression_for_single_zero_group(self):
        # RFC 5952: a lone zero group is not compressed.
        assert str(IPAddress.parse("1:2:3:0:5:6:7:8")) == "1:2:3:0:5:6:7:8"

    @given(st.integers(min_value=0, max_value=MAX_IPV6))
    def test_roundtrip(self, value):
        assert IPAddress.parse(str(IPAddress.v6(value))).value == value


class TestHashability:
    def test_usable_as_dict_key(self):
        table = {IPAddress.parse("10.0.0.1"): "a", IPAddress.parse("::1"): "b"}
        assert table[IPAddress.v4((10 << 24) + 1)] == "a"

    def test_equal_addresses_hash_equal(self):
        assert hash(IPAddress.parse("::1")) == hash(IPAddress.v6(1))
