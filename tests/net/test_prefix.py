"""Tests for CIDR prefixes and the longest-prefix-match trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.ip import IPAddress, IPVersion
from repro.net.prefix import Prefix, PrefixTrie


class TestPrefix:
    def test_parse(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.version is IPVersion.V4
        assert prefix.length == 24
        assert str(prefix) == "192.0.2.0/24"

    def test_parse_v6(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert prefix.version is IPVersion.V6
        assert prefix.num_addresses == 1 << 96

    def test_parse_requires_length(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0")

    def test_host_bits_must_be_zero(self):
        with pytest.raises(ValueError):
            Prefix.parse("192.0.2.1/24")

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/33")

    def test_contains(self):
        prefix = Prefix.parse("10.1.0.0/16")
        assert prefix.contains(IPAddress.parse("10.1.2.3"))
        assert not prefix.contains(IPAddress.parse("10.2.0.0"))
        assert not prefix.contains(IPAddress.parse("::1"))  # version mismatch

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_from_address_masks_host_bits(self):
        prefix = Prefix.from_address(IPAddress.parse("10.1.2.3"), 16)
        assert str(prefix) == "10.1.0.0/16"

    def test_address_indexing(self):
        prefix = Prefix.parse("192.0.2.0/30")
        assert str(prefix.address(1)) == "192.0.2.1"
        with pytest.raises(ValueError):
            prefix.address(4)

    def test_subprefix(self):
        parent = Prefix.parse("10.0.0.0/8")
        assert str(parent.subprefix(16, 0)) == "10.0.0.0/16"
        assert str(parent.subprefix(16, 255)) == "10.255.0.0/16"
        with pytest.raises(ValueError):
            parent.subprefix(16, 256)
        with pytest.raises(ValueError):
            parent.subprefix(4, 0)  # shorter than parent


class TestTrieBasics:
    def test_insert_and_exact_lookup(self):
        trie = PrefixTrie(IPVersion.V4)
        trie.insert(Prefix.parse("10.0.0.0/8"), "ten")
        assert trie.lookup_exact(Prefix.parse("10.0.0.0/8")) == "ten"
        assert trie.lookup_exact(Prefix.parse("10.0.0.0/9")) is None
        assert len(trie) == 1

    def test_longest_match_prefers_more_specific(self):
        trie = PrefixTrie(IPVersion.V4)
        trie.insert(Prefix.parse("10.0.0.0/8"), "short")
        trie.insert(Prefix.parse("10.1.0.0/16"), "long")
        assert trie.lookup(IPAddress.parse("10.1.2.3")) == "long"
        assert trie.lookup(IPAddress.parse("10.2.2.3")) == "short"
        match = trie.longest_match(IPAddress.parse("10.1.2.3"))
        assert match is not None and match[0] == Prefix.parse("10.1.0.0/16")

    def test_lookup_miss(self):
        trie = PrefixTrie(IPVersion.V4)
        trie.insert(Prefix.parse("10.0.0.0/8"), "x")
        assert trie.lookup(IPAddress.parse("11.0.0.1")) is None

    def test_default_route(self):
        trie = PrefixTrie(IPVersion.V4)
        trie.insert(Prefix.parse("0.0.0.0/0"), "default")
        assert trie.lookup(IPAddress.parse("203.0.113.7")) == "default"

    def test_replace_payload(self):
        trie = PrefixTrie(IPVersion.V4)
        prefix = Prefix.parse("10.0.0.0/8")
        trie.insert(prefix, 1)
        trie.insert(prefix, 2)
        assert trie.lookup_exact(prefix) == 2
        assert len(trie) == 1

    def test_version_mismatch_rejected(self):
        trie = PrefixTrie(IPVersion.V4)
        with pytest.raises(ValueError):
            trie.insert(Prefix.parse("2001:db8::/32"), "nope")
        with pytest.raises(ValueError):
            trie.lookup(IPAddress.parse("::1"))

    def test_remove(self):
        trie = PrefixTrie(IPVersion.V4)
        short = Prefix.parse("10.0.0.0/8")
        long = Prefix.parse("10.1.0.0/16")
        trie.insert(short, "s")
        trie.insert(long, "l")
        assert trie.remove(long)
        assert not trie.remove(long)  # already gone
        assert trie.lookup(IPAddress.parse("10.1.2.3")) == "s"
        assert len(trie) == 1

    def test_remove_keeps_more_specific(self):
        trie = PrefixTrie(IPVersion.V4)
        trie.insert(Prefix.parse("10.0.0.0/8"), "s")
        trie.insert(Prefix.parse("10.1.0.0/16"), "l")
        assert trie.remove(Prefix.parse("10.0.0.0/8"))
        assert trie.lookup(IPAddress.parse("10.1.2.3")) == "l"
        assert trie.lookup(IPAddress.parse("10.2.0.1")) is None

    def test_items_yields_all(self):
        trie = PrefixTrie(IPVersion.V6)
        prefixes = [Prefix.parse(p) for p in ("2001:db8::/32", "2600::/12", "::/0")]
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        assert {prefix for prefix, _ in trie.items()} == set(prefixes)


# ----------------------------------------------------------------------
# Property-based: the trie agrees with a brute-force LPM implementation.
# ----------------------------------------------------------------------

_prefixes = st.lists(
    st.tuples(st.integers(min_value=0, max_value=(1 << 32) - 1),
              st.integers(min_value=0, max_value=32)),
    min_size=1,
    max_size=24,
)
_addresses = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=1, max_size=16
)


def _brute_force_lpm(entries, address):
    best = None
    for prefix, payload in entries.items():
        if prefix.contains(address) and (best is None or prefix.length > best[0].length):
            best = (prefix, payload)
    return best


class TestTrieProperties:
    @settings(max_examples=80, deadline=None)
    @given(_prefixes, _addresses)
    def test_matches_brute_force(self, raw_prefixes, raw_addresses):
        trie = PrefixTrie(IPVersion.V4)
        entries = {}
        for network, length in raw_prefixes:
            prefix = Prefix.from_address(IPAddress.v4(network), length)
            entries[prefix] = f"{prefix}"
            trie.insert(prefix, entries[prefix])
        for raw in raw_addresses:
            address = IPAddress.v4(raw)
            expected = _brute_force_lpm(entries, address)
            actual = trie.longest_match(address)
            if expected is None:
                assert actual is None
            else:
                assert actual is not None
                assert actual[0].length == expected[0].length
                assert actual[1] == entries[actual[0]]

    @settings(max_examples=40, deadline=None)
    @given(_prefixes)
    def test_insert_remove_roundtrip(self, raw_prefixes):
        trie = PrefixTrie(IPVersion.V4)
        prefixes = set()
        for network, length in raw_prefixes:
            prefix = Prefix.from_address(IPAddress.v4(network), length)
            prefixes.add(prefix)
            trie.insert(prefix, str(prefix))
        assert len(trie) == len(prefixes)
        for prefix in prefixes:
            assert trie.remove(prefix)
        assert len(trie) == 0
        assert list(trie.items()) == []
