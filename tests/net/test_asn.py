"""Tests for AS relationships and the relationship table."""

import pytest

from repro.net.asn import ASRelationship, RelationshipTable


class TestInvert:
    def test_customer_provider_flip(self):
        assert ASRelationship.CUSTOMER.invert() is ASRelationship.PROVIDER
        assert ASRelationship.PROVIDER.invert() is ASRelationship.CUSTOMER

    def test_symmetric_relationships_self_invert(self):
        assert ASRelationship.PEER.invert() is ASRelationship.PEER
        assert ASRelationship.SIBLING.invert() is ASRelationship.SIBLING


class TestRelationshipTable:
    def test_symmetric_view(self):
        table = RelationshipTable()
        table.add(1, 2, ASRelationship.CUSTOMER)  # 2 is customer of 1
        assert table.get(1, 2) is ASRelationship.CUSTOMER
        assert table.get(2, 1) is ASRelationship.PROVIDER

    def test_order_independence_of_add(self):
        table = RelationshipTable()
        table.add(9, 3, ASRelationship.PROVIDER)  # 3 is provider of 9
        assert table.get(3, 9) is ASRelationship.CUSTOMER

    def test_unknown_pair_is_none(self):
        table = RelationshipTable()
        assert table.get(1, 2) is None

    def test_self_relationship_rejected(self):
        table = RelationshipTable()
        with pytest.raises(ValueError):
            table.add(5, 5, ASRelationship.PEER)

    def test_conflicting_readd_rejected(self):
        table = RelationshipTable()
        table.add(1, 2, ASRelationship.PEER)
        with pytest.raises(ValueError):
            table.add(2, 1, ASRelationship.CUSTOMER)

    def test_consistent_readd_allowed(self):
        table = RelationshipTable()
        table.add(1, 2, ASRelationship.CUSTOMER)
        table.add(2, 1, ASRelationship.PROVIDER)  # same fact, other side
        assert len(table) == 1

    def test_role_iterators(self):
        table = RelationshipTable()
        table.add(10, 20, ASRelationship.CUSTOMER)
        table.add(10, 30, ASRelationship.PEER)
        table.add(10, 40, ASRelationship.PROVIDER)
        assert set(table.customers(10)) == {20}
        assert set(table.peers(10)) == {30}
        assert set(table.providers(10)) == {40}
        assert table.neighbors(10) == {20, 30, 40}

    def test_is_customer_of(self):
        table = RelationshipTable()
        table.add(1, 2, ASRelationship.CUSTOMER)
        assert table.is_customer_of(2, 1)
        assert not table.is_customer_of(1, 2)

    def test_pairs_iteration(self):
        table = RelationshipTable()
        table.add(1, 2, ASRelationship.PEER)
        table.add(3, 4, ASRelationship.CUSTOMER)
        pairs = {(a, b): rel for a, b, rel in table.pairs()}
        assert len(pairs) == 2

    def test_copy_is_independent(self):
        table = RelationshipTable()
        table.add(1, 2, ASRelationship.PEER)
        clone = table.copy()
        clone.add(3, 4, ASRelationship.CUSTOMER)
        assert table.get(3, 4) is None
        assert clone.get(1, 2) is ASRelationship.PEER
