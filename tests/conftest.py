"""Shared fixtures: one small platform and its datasets for the whole run.

The platform is deliberately small (10 clusters, 60 simulated days) so the
suite stays fast; tests that need paper-scale shapes live in
``tests/integration`` and use looser bands.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.congestion import CongestionDetector
from repro.datasets.longterm import LongTermConfig, build_longterm_dataset
from repro.datasets.shortterm import (
    ShortTermConfig,
    build_shortterm_ping_dataset,
    build_shortterm_trace_dataset,
)
from repro.measurement.platform import MeasurementPlatform, PlatformConfig
from repro.topology.addressing import allocate_addresses
from repro.topology.cdn import deploy_cdn
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.routers import build_router_topology

# Chosen so the small session platform draws congestion the short-term
# campaign can actually flag and localize (not every seed does at this
# scale).
SESSION_SEED = 13


@pytest.fixture(scope="session")
def platform() -> MeasurementPlatform:
    """A small, fully-assembled measurement platform."""
    return MeasurementPlatform(
        PlatformConfig(seed=SESSION_SEED, cluster_count=10, duration_hours=60 * 24.0)
    )


@pytest.fixture(scope="session")
def graph():
    """A standalone AS graph (independent of the platform fixture)."""
    return generate_topology(TopologyConfig(), rng=np.random.default_rng(3))


@pytest.fixture(scope="session")
def plan(graph):
    """An address plan over the standalone graph."""
    return allocate_addresses(graph, rng=np.random.default_rng(4))


@pytest.fixture(scope="session")
def router_topology(graph, plan):
    """A router topology over the standalone graph."""
    return build_router_topology(graph, plan, rng=np.random.default_rng(5))


@pytest.fixture(scope="session")
def cdn(graph, plan):
    """A small CDN deployment over the standalone graph."""
    return deploy_cdn(graph, plan, cluster_count=8, rng=np.random.default_rng(6))


@pytest.fixture(scope="session")
def longterm(platform):
    """A 60-day long-term dataset on the session platform."""
    return build_longterm_dataset(platform, LongTermConfig(days=60))


@pytest.fixture(scope="session")
def ping_dataset(platform):
    """A one-week ping dataset on the session platform."""
    return build_shortterm_ping_dataset(
        platform, ShortTermConfig(ping_days=7.0, trace_days=14.0)
    )


@pytest.fixture(scope="session")
def trace_dataset(platform, ping_dataset):
    """The follow-up traceroute dataset over ping-flagged pairs."""
    detector = CongestionDetector()
    flagged = set()
    for (src_id, dst_id, _version), timeline in ping_dataset.timelines.items():
        if detector.assess(timeline).congested:
            flagged.add((src_id, dst_id))
    servers = {server.server_id: server for server in platform.measurement_servers()}
    pairs = [
        (servers[src_id], servers[dst_id]) for src_id, dst_id in sorted(flagged)
    ]
    return build_shortterm_trace_dataset(
        platform, pairs, ShortTermConfig(ping_days=7.0, trace_days=14.0)
    )
