"""Tests for the short-term ping and traceroute dataset builders."""

import numpy as np
import pytest

from repro.datasets.shortterm import (
    ShortTermConfig,
    build_shortterm_ping_dataset,
    build_shortterm_trace_dataset,
)
from repro.net.ip import IPVersion


class TestPingDataset:
    def test_grid(self, ping_dataset):
        assert ping_dataset.grid.period_hours == 0.25
        assert ping_dataset.grid.rounds == 672

    def test_timeline_per_pair_and_protocol(self, platform, ping_dataset):
        pairs = platform.server_pairs()
        v4_count = sum(
            1 for key in ping_dataset.timelines if key[2] is IPVersion.V4
        )
        assert v4_count == len(pairs)

    def test_mostly_answered(self, ping_dataset):
        timeline = next(iter(ping_dataset.timelines.values()))
        assert timeline.valid_count() >= 600  # the paper's inclusion bar

    def test_window_must_fit(self, platform):
        with pytest.raises(ValueError):
            build_shortterm_ping_dataset(
                platform, ShortTermConfig(ping_days=10_000)
            )


class TestTraceDataset:
    def test_entries_have_hop_matrices(self, trace_dataset):
        for entry in trace_dataset.entries.values():
            assert entry.hop_rtt_ms.shape == (
                entry.n_hops,
                entry.times_hours.size,
            )
            assert len(entry.hop_addresses) == entry.n_hops
            assert len(entry.segment_keys) == entry.n_hops

    def test_destination_row_always_answers(self, trace_dataset):
        for entry in trace_dataset.entries.values():
            if not entry.static_path:
                continue
            last_row = entry.hop_rtt_ms[-1]
            assert np.isfinite(last_row).all()

    def test_e2e_matches_last_hop(self, trace_dataset):
        for entry in trace_dataset.entries.values():
            if not entry.static_path:
                continue
            assert np.allclose(
                entry.rtt_ms, entry.hop_rtt_ms[-1], equal_nan=True
            )

    def test_hop_rows_mostly_monotone_in_baseline(self, trace_dataset):
        import warnings

        for entry in list(trace_dataset.entries.values())[:5]:
            with warnings.catch_warnings():
                # Never-responding hops leave all-NaN rows; that is expected.
                warnings.simplefilter("ignore", RuntimeWarning)
                medians = np.nanmedian(entry.hop_rtt_ms, axis=1)
            finite = medians[np.isfinite(medians)]
            if finite.size >= 2:
                assert finite[-1] >= finite[0]

    def test_explicit_pairs(self, platform):
        pairs = platform.server_pairs()[:2]
        dataset = build_shortterm_trace_dataset(
            platform, pairs, ShortTermConfig(trace_days=5.0)
        )
        built_pairs = {(entry.src_server_id, entry.dst_server_id)
                       for entry in dataset.entries.values()}
        assert built_pairs <= {(s.server_id, d.server_id) for s, d in pairs}

    def test_window_must_fit(self, platform):
        with pytest.raises(ValueError):
            build_shortterm_trace_dataset(
                platform, [], ShortTermConfig(trace_days=10_000)
            )
