"""Parallel builders must be bit-identical to serial ones.

The builders shard per-pair work across a fork pool; because every pair
draws from its own named RNG stream, worker count and scheduling cannot
affect the output.  These tests pin that guarantee -- every array, every
interned path, every server list, compared exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.longterm import LongTermConfig, build_longterm_dataset
from repro.datasets.parallel import fork_map, resolve_jobs
from repro.datasets.shortterm import (
    ShortTermConfig,
    build_shortterm_ping_dataset,
    build_shortterm_trace_dataset,
)


class TestForkMap:
    def test_serial_matches_builtin_map(self):
        items = list(range(17))
        assert fork_map(lambda x: x * x, items, jobs=1) == [x * x for x in items]

    def test_parallel_preserves_order(self):
        items = list(range(23))
        assert fork_map(lambda x: x + 100, items, jobs=4) == [
            x + 100 for x in items
        ]

    def test_empty_input(self):
        assert fork_map(lambda x: x, [], jobs=4) == []

    def test_closure_state_is_visible_to_workers(self):
        # Fork shares parent memory copy-on-write: closures over large
        # structures (the platform) must work without pickling.
        table = {index: index * 3 for index in range(10)}
        assert fork_map(lambda x: table[x], list(table), jobs=2) == [
            index * 3 for index in range(10)
        ]

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1


def _assert_trace_timelines_identical(serial, parallel):
    assert list(serial.timelines) == list(parallel.timelines)
    for key, expected in serial.timelines.items():
        actual = parallel.timelines[key]
        assert np.array_equal(expected.times_hours, actual.times_hours)
        assert np.array_equal(expected.rtt_ms, actual.rtt_ms, equal_nan=True)
        assert np.array_equal(expected.outcome, actual.outcome)
        assert np.array_equal(expected.path_id, actual.path_id)
        assert np.array_equal(expected.true_candidate, actual.true_candidate)
        assert expected.paths == actual.paths


class TestLongTermParallelDeterminism:
    @pytest.fixture(scope="class")
    def serial(self, platform):
        return build_longterm_dataset(platform, LongTermConfig(days=30), jobs=1)

    def test_jobs4_bit_identical(self, platform, serial):
        parallel = build_longterm_dataset(
            platform, LongTermConfig(days=30), jobs=4
        )
        assert serial.servers == parallel.servers
        _assert_trace_timelines_identical(serial, parallel)

    def test_jobs0_all_cores_bit_identical(self, platform, serial):
        parallel = build_longterm_dataset(
            platform, LongTermConfig(days=30), jobs=0
        )
        _assert_trace_timelines_identical(serial, parallel)


class TestShortTermParallelDeterminism:
    def test_ping_jobs_bit_identical(self, platform):
        config = ShortTermConfig(ping_days=3.0, trace_days=3.0)
        serial = build_shortterm_ping_dataset(platform, config, jobs=1)
        parallel = build_shortterm_ping_dataset(platform, config, jobs=4)
        assert list(serial.timelines) == list(parallel.timelines)
        for key, expected in serial.timelines.items():
            actual = parallel.timelines[key]
            assert np.array_equal(expected.times_hours, actual.times_hours)
            assert np.array_equal(expected.rtt_ms, actual.rtt_ms, equal_nan=True)

    def test_trace_jobs_bit_identical(self, platform):
        config = ShortTermConfig(ping_days=3.0, trace_days=3.0)
        servers = platform.measurement_servers()
        pairs = [(servers[0], servers[1]), (servers[1], servers[2]),
                 (servers[2], servers[0])]
        serial = build_shortterm_trace_dataset(platform, pairs, config, jobs=1)
        parallel = build_shortterm_trace_dataset(platform, pairs, config, jobs=4)
        assert list(serial.entries) == list(parallel.entries)
        for key, expected in serial.entries.items():
            actual = parallel.entries[key]
            assert np.array_equal(
                expected.hop_rtt_ms, actual.hop_rtt_ms, equal_nan=True
            )
            assert np.array_equal(expected.rtt_ms, actual.rtt_ms, equal_nan=True)
            assert expected.hop_addresses == actual.hop_addresses
            assert expected.segment_keys == actual.segment_keys
            assert expected.static_path is actual.static_path
            assert expected.observed_as_path == actual.observed_as_path
