"""Parallel builders must be bit-identical to serial ones.

The builders shard per-pair work across a fork pool; because every pair
draws from its own named RNG stream, worker count and scheduling cannot
affect the output.  These tests pin that guarantee -- every array, every
interned path, every server list, compared exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.longterm import LongTermConfig, build_longterm_dataset
from repro.datasets.parallel import fork_map, resolve_jobs
from repro.datasets.shortterm import (
    ShortTermConfig,
    build_shortterm_ping_dataset,
    build_shortterm_trace_dataset,
)


class TestForkMap:
    def test_serial_matches_builtin_map(self):
        items = list(range(17))
        assert fork_map(lambda x: x * x, items, jobs=1) == [x * x for x in items]

    def test_parallel_preserves_order(self):
        items = list(range(23))
        assert fork_map(lambda x: x + 100, items, jobs=4) == [
            x + 100 for x in items
        ]

    def test_empty_input(self):
        assert fork_map(lambda x: x, [], jobs=4) == []

    def test_empty_input_never_resolves_jobs(self, monkeypatch):
        # jobs=0 means "all cores" -- but an empty map must return before
        # consulting the machine at all (the old path relied on the
        # serial fallback via min(cores, 0) == 0).
        import repro.datasets.parallel as parallel_module

        def boom(_jobs):
            raise AssertionError("resolve_jobs called for an empty map")

        monkeypatch.setattr(parallel_module, "resolve_jobs", boom)
        assert fork_map(lambda x: x, [], jobs=0) == []
        assert fork_map(lambda x: x, iter(()), jobs=4) == []

    def test_closure_state_is_visible_to_workers(self):
        # Fork shares parent memory copy-on-write: closures over large
        # structures (the platform) must work without pickling.
        table = {index: index * 3 for index in range(10)}
        assert fork_map(lambda x: table[x], list(table), jobs=2) == [
            index * 3 for index in range(10)
        ]

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1


class TestForkMapTelemetry:
    @pytest.fixture(autouse=True)
    def clean_obs(self):
        from repro.obs import metrics, trace

        metrics.get_registry().reset()
        trace.set_tracer(trace.Tracer())
        yield
        metrics.get_registry().reset()
        trace.set_tracer(trace.Tracer())

    def test_span_records_items_and_jobs(self):
        from repro.obs import trace

        fork_map(lambda x: x, [1, 2, 3], jobs=1, label="unit")
        spans = trace.get_tracer().spans
        assert [span.name for span in spans] == ["fork_map:unit"]
        assert spans[0].attrs["items"] == 3
        assert spans[0].attrs["jobs"] == 1

    def test_worker_counters_merge_back_to_parent(self):
        # Counters bumped inside forked workers must reach the parent
        # registry exactly once per item, via the snapshot-delta scheme.
        import multiprocessing

        from repro.obs import metrics

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")

        def work(x):
            metrics.counter("test.worker.items").inc()
            metrics.counter("test.worker.weight").inc(x)
            return x * 2

        items = list(range(8))
        assert fork_map(work, items, jobs=2, label="unit") == [
            x * 2 for x in items
        ]
        snap = metrics.get_registry().snapshot()
        assert snap["counters"]["test.worker.items"] == len(items)
        assert snap["counters"]["test.worker.weight"] == sum(items)
        assert snap["histograms"]["fork_map.item_seconds"]["count"] == len(items)
        assert snap["gauges"]["fork_map.jobs"] == 2

    def test_serial_counters_count_in_process(self):
        from repro.obs import metrics

        def work(x):
            metrics.counter("test.serial.items").inc()
            return x

        fork_map(work, [1, 2, 3], jobs=1)
        snap = metrics.get_registry().snapshot()
        assert snap["counters"]["test.serial.items"] == 3
        assert snap["counters"]["fork_map.items"] == 3
        assert snap["counters"]["fork_map.calls"] == 1


def _assert_trace_timelines_identical(serial, parallel):
    assert list(serial.timelines) == list(parallel.timelines)
    for key, expected in serial.timelines.items():
        actual = parallel.timelines[key]
        assert np.array_equal(expected.times_hours, actual.times_hours)
        assert np.array_equal(expected.rtt_ms, actual.rtt_ms, equal_nan=True)
        assert np.array_equal(expected.outcome, actual.outcome)
        assert np.array_equal(expected.path_id, actual.path_id)
        assert np.array_equal(expected.true_candidate, actual.true_candidate)
        assert expected.paths == actual.paths


class TestLongTermParallelDeterminism:
    @pytest.fixture(scope="class")
    def serial(self, platform):
        return build_longterm_dataset(platform, LongTermConfig(days=30), jobs=1)

    def test_jobs4_bit_identical(self, platform, serial):
        parallel = build_longterm_dataset(
            platform, LongTermConfig(days=30), jobs=4
        )
        assert serial.servers == parallel.servers
        _assert_trace_timelines_identical(serial, parallel)

    def test_jobs0_all_cores_bit_identical(self, platform, serial):
        parallel = build_longterm_dataset(
            platform, LongTermConfig(days=30), jobs=0
        )
        _assert_trace_timelines_identical(serial, parallel)


class TestShortTermParallelDeterminism:
    def test_ping_jobs_bit_identical(self, platform):
        config = ShortTermConfig(ping_days=3.0, trace_days=3.0)
        serial = build_shortterm_ping_dataset(platform, config, jobs=1)
        parallel = build_shortterm_ping_dataset(platform, config, jobs=4)
        assert list(serial.timelines) == list(parallel.timelines)
        for key, expected in serial.timelines.items():
            actual = parallel.timelines[key]
            assert np.array_equal(expected.times_hours, actual.times_hours)
            assert np.array_equal(expected.rtt_ms, actual.rtt_ms, equal_nan=True)

    def test_trace_jobs_bit_identical(self, platform):
        config = ShortTermConfig(ping_days=3.0, trace_days=3.0)
        servers = platform.measurement_servers()
        pairs = [(servers[0], servers[1]), (servers[1], servers[2]),
                 (servers[2], servers[0])]
        serial = build_shortterm_trace_dataset(platform, pairs, config, jobs=1)
        parallel = build_shortterm_trace_dataset(platform, pairs, config, jobs=4)
        assert list(serial.entries) == list(parallel.entries)
        for key, expected in serial.entries.items():
            actual = parallel.entries[key]
            assert np.array_equal(
                expected.hop_rtt_ms, actual.hop_rtt_ms, equal_nan=True
            )
            assert np.array_equal(expected.rtt_ms, actual.rtt_ms, equal_nan=True)
            assert expected.hop_addresses == actual.hop_addresses
            assert expected.segment_keys == actual.segment_keys
            assert expected.static_path is actual.static_path
            assert expected.observed_as_path == actual.observed_as_path
