"""Tests for trace/ping timeline containers."""

import numpy as np
import pytest

from repro.datasets.timeline import PingTimeline, TraceTimeline
from repro.measurement.traceroute import TraceOutcome
from repro.net.ip import IPVersion


def _timeline(outcomes, rtts=None, path_ids=None, paths=None):
    count = len(outcomes)
    times = 3.0 * np.arange(count)
    return TraceTimeline(
        src_server_id=0,
        dst_server_id=1,
        version=IPVersion.V4,
        times_hours=times,
        rtt_ms=np.asarray(rtts if rtts is not None else [10.0] * count, dtype=np.float32),
        outcome=np.asarray(outcomes, dtype=np.uint8),
        path_id=np.asarray(path_ids if path_ids is not None else [0] * count, dtype=np.int32),
        paths=paths if paths is not None else [(1, 2, 3)],
        true_candidate=np.zeros(count, dtype=np.int16),
    )


COMPLETE = int(TraceOutcome.COMPLETE)
MISSING_AS = int(TraceOutcome.MISSING_AS)
MISSING_IP = int(TraceOutcome.MISSING_IP)
LOOP = int(TraceOutcome.LOOP)
INCOMPLETE = int(TraceOutcome.INCOMPLETE)


class TestTraceTimeline:
    def test_usable_mask_excludes_loops_and_incomplete(self):
        timeline = _timeline([COMPLETE, MISSING_AS, MISSING_IP, LOOP, INCOMPLETE])
        assert timeline.usable_mask().tolist() == [True, True, True, False, False]

    def test_complete_mask_excludes_only_incomplete(self):
        timeline = _timeline([COMPLETE, LOOP, INCOMPLETE])
        assert timeline.complete_mask().tolist() == [True, True, False]

    def test_observed_paths_deduplicated(self):
        timeline = _timeline(
            [COMPLETE] * 4,
            path_ids=[0, 1, 0, 1],
            paths=[(1, 2), (1, 3)],
        )
        assert timeline.observed_paths() == [(1, 2), (1, 3)]

    def test_observed_paths_skip_unusable(self):
        timeline = _timeline(
            [COMPLETE, LOOP],
            path_ids=[0, 1],
            paths=[(1, 2), (1, 3, 1)],
        )
        assert timeline.observed_paths() == [(1, 2)]

    def test_rtts_by_path_buckets(self):
        timeline = _timeline(
            [COMPLETE] * 4,
            rtts=[10.0, 20.0, 30.0, 40.0],
            path_ids=[0, 0, 1, 1],
            paths=[(1, 2), (1, 3)],
        )
        buckets = timeline.usable_rtts_by_path()
        assert sorted(buckets) == [0, 1]
        assert buckets[0].tolist() == [10.0, 20.0]
        assert buckets[1].tolist() == [30.0, 40.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TraceTimeline(
                src_server_id=0, dst_server_id=1, version=IPVersion.V4,
                times_hours=np.arange(3.0),
                rtt_ms=np.zeros(2, dtype=np.float32),
                outcome=np.zeros(3, dtype=np.uint8),
                path_id=np.zeros(3, dtype=np.int32),
            )

    def test_pair(self):
        assert _timeline([COMPLETE]).pair == (0, 1)


class TestPingTimeline:
    def _ping(self, rtts):
        return PingTimeline(
            src_server_id=0, dst_server_id=1, version=IPVersion.V4,
            times_hours=0.25 * np.arange(len(rtts)),
            rtt_ms=np.asarray(rtts, dtype=np.float32),
        )

    def test_valid_count(self):
        timeline = self._ping([1.0, np.nan, 3.0])
        assert timeline.valid_count() == 2

    def test_percentile_spread(self):
        rtts = list(np.linspace(10, 30, 100))
        timeline = self._ping(rtts)
        assert timeline.percentile_spread() == pytest.approx(0.9 * 20.0, abs=0.5)

    def test_spread_of_empty_is_nan(self):
        timeline = self._ping([np.nan, np.nan])
        assert np.isnan(timeline.percentile_spread())

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PingTimeline(
                src_server_id=0, dst_server_id=1, version=IPVersion.V4,
                times_hours=np.arange(3.0), rtt_ms=np.zeros(2, dtype=np.float32),
            )
