"""Tests for dataset persistence."""

import numpy as np

from repro.datasets.io import load_longterm, save_longterm
from repro.datasets.longterm import LongTermConfig, build_longterm_dataset


class TestRoundtrip:
    def test_save_load_identical(self, platform, tmp_path):
        pairs = platform.server_pairs(dual_stack_only=True)[:2]
        dataset = build_longterm_dataset(platform, LongTermConfig(days=10), pairs=pairs)
        path = tmp_path / "longterm.npz"
        save_longterm(dataset, path)
        loaded = load_longterm(path)

        assert loaded.grid.rounds == dataset.grid.rounds
        assert loaded.grid.period_hours == dataset.grid.period_hours
        assert set(loaded.timelines) == set(dataset.timelines)
        for key, timeline in dataset.timelines.items():
            other = loaded.timelines[key]
            assert np.allclose(timeline.rtt_ms, other.rtt_ms, equal_nan=True)
            assert np.array_equal(timeline.outcome, other.outcome)
            assert np.array_equal(timeline.path_id, other.path_id)
            assert np.array_equal(timeline.true_candidate, other.true_candidate)
            assert [tuple(p) for p in timeline.paths] == [tuple(p) for p in other.paths]

    def test_loaded_dataset_supports_analysis(self, platform, tmp_path):
        from repro.core.routechange import analyze_timeline

        pairs = platform.server_pairs(dual_stack_only=True)[:1]
        dataset = build_longterm_dataset(platform, LongTermConfig(days=10), pairs=pairs)
        path = tmp_path / "roundtrip.npz"
        save_longterm(dataset, path)
        loaded = load_longterm(path)
        for timeline in loaded.timelines.values():
            stats = analyze_timeline(timeline)
            assert stats.unique_paths >= 0


class TestPingRoundtrip:
    def test_save_load_pings(self, platform, tmp_path):
        import numpy as np

        from repro.datasets.io import load_pings, save_pings
        from repro.datasets.shortterm import (
            ShortTermConfig,
            build_shortterm_ping_dataset,
        )

        pairs = platform.server_pairs()[:3]
        dataset = build_shortterm_ping_dataset(
            platform, ShortTermConfig(ping_days=2.0), pairs=pairs
        )
        path = tmp_path / "pings.npz"
        save_pings(dataset, path)
        loaded = load_pings(path)
        assert set(loaded.timelines) == set(dataset.timelines)
        for key, timeline in dataset.timelines.items():
            assert np.allclose(
                timeline.rtt_ms, loaded.timelines[key].rtt_ms, equal_nan=True
            )
        assert loaded.grid.period_hours == dataset.grid.period_hours
