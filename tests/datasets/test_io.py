"""Tests for dataset persistence."""

import numpy as np

from repro.datasets.io import load_longterm, save_longterm
from repro.datasets.longterm import LongTermConfig, build_longterm_dataset


class TestRoundtrip:
    def test_save_load_identical(self, platform, tmp_path):
        pairs = platform.server_pairs(dual_stack_only=True)[:2]
        dataset = build_longterm_dataset(platform, LongTermConfig(days=10), pairs=pairs)
        path = tmp_path / "longterm.npz"
        save_longterm(dataset, path)
        loaded = load_longterm(path)

        assert loaded.grid.rounds == dataset.grid.rounds
        assert loaded.grid.period_hours == dataset.grid.period_hours
        assert set(loaded.timelines) == set(dataset.timelines)
        for key, timeline in dataset.timelines.items():
            other = loaded.timelines[key]
            assert np.allclose(timeline.rtt_ms, other.rtt_ms, equal_nan=True)
            assert np.array_equal(timeline.outcome, other.outcome)
            assert np.array_equal(timeline.path_id, other.path_id)
            assert np.array_equal(timeline.true_candidate, other.true_candidate)
            assert [tuple(p) for p in timeline.paths] == [tuple(p) for p in other.paths]

    def test_loaded_dataset_supports_analysis(self, platform, tmp_path):
        from repro.core.routechange import analyze_timeline

        pairs = platform.server_pairs(dual_stack_only=True)[:1]
        dataset = build_longterm_dataset(platform, LongTermConfig(days=10), pairs=pairs)
        path = tmp_path / "roundtrip.npz"
        save_longterm(dataset, path)
        loaded = load_longterm(path)
        for timeline in loaded.timelines.values():
            stats = analyze_timeline(timeline)
            assert stats.unique_paths >= 0


class TestIterLongterm:
    def test_streams_same_timelines_as_load(self, platform, tmp_path):
        from repro.datasets.io import iter_longterm

        pairs = platform.server_pairs(dual_stack_only=True)[:2]
        dataset = build_longterm_dataset(platform, LongTermConfig(days=10), pairs=pairs)
        path = tmp_path / "longterm.npz"
        save_longterm(dataset, path)

        streamed = {}
        for timeline in iter_longterm(path):
            key = (timeline.src_server_id, timeline.dst_server_id, timeline.version)
            streamed[key] = timeline
        loaded = load_longterm(path)
        assert set(streamed) == set(loaded.timelines)
        for key, timeline in loaded.timelines.items():
            other = streamed[key]
            assert np.array_equal(timeline.rtt_ms, other.rtt_ms, equal_nan=True)
            assert np.array_equal(timeline.outcome, other.outcome)
            assert np.array_equal(timeline.path_id, other.path_id)
            assert timeline.paths == other.paths

    def test_is_lazy(self, platform, tmp_path):
        from repro.datasets.io import iter_longterm

        pairs = platform.server_pairs(dual_stack_only=True)[:2]
        dataset = build_longterm_dataset(platform, LongTermConfig(days=10), pairs=pairs)
        path = tmp_path / "longterm.npz"
        save_longterm(dataset, path)
        iterator = iter_longterm(path)
        first = next(iterator)
        assert first.rtt_ms.size == dataset.grid.rounds
        iterator.close()  # closing early must release the archive cleanly


class TestRecordsJsonl:
    def _records(self):
        from repro.stream.records import PingRecord, TracerouteRecord

        return [
            TracerouteRecord(
                src=0, dst=1, version=4, round_index=0, time_hours=0.25,
                rtt_ms=12.345678901234567, outcome=0, as_path=(3356, 174, 2914),
            ),
            TracerouteRecord(
                src=0, dst=1, version=6, round_index=1, time_hours=3.25,
                rtt_ms=float("nan"), outcome=2, as_path=None,
            ),
            PingRecord(src=2, dst=3, version=4, round_index=5, time_hours=1.5,
                       rtt_ms=float("nan")),
            PingRecord(src=2, dst=3, version=4, round_index=6, time_hours=1.75,
                       rtt_ms=99.125),
        ]

    def _assert_equal(self, expected, actual):
        import math

        assert len(actual) == len(expected)
        for left, right in zip(expected, actual):
            assert type(left) is type(right)
            for field in left.__dataclass_fields__:
                a, b = getattr(left, field), getattr(right, field)
                if isinstance(a, float) and math.isnan(a):
                    assert math.isnan(b)
                else:
                    assert a == b, (field, a, b)

    def test_round_trip(self, tmp_path):
        from repro.datasets.io import iter_records, save_records

        path = tmp_path / "records.jsonl"
        save_records(self._records(), path)
        self._assert_equal(self._records(), list(iter_records(path)))

    def test_round_trip_gzip(self, tmp_path):
        from repro.datasets.io import iter_records, save_records

        path = tmp_path / "records.jsonl.gz"
        save_records(self._records(), path)
        self._assert_equal(self._records(), list(iter_records(path)))

    def test_rejects_wrong_format(self, tmp_path):
        import pytest

        from repro.datasets.io import iter_records

        path = tmp_path / "bogus.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro-records"):
            list(iter_records(path))

    def test_rejects_unknown_schema(self, tmp_path):
        import pytest

        from repro.datasets.io import iter_records

        path = tmp_path / "future.jsonl"
        path.write_text('{"format": "repro-records", "schema": 999}\n')
        with pytest.raises(ValueError, match="schema 999"):
            list(iter_records(path))


class TestPingRoundtrip:
    def test_save_load_pings(self, platform, tmp_path):
        import numpy as np

        from repro.datasets.io import load_pings, save_pings
        from repro.datasets.shortterm import (
            ShortTermConfig,
            build_shortterm_ping_dataset,
        )

        pairs = platform.server_pairs()[:3]
        dataset = build_shortterm_ping_dataset(
            platform, ShortTermConfig(ping_days=2.0), pairs=pairs
        )
        path = tmp_path / "pings.npz"
        save_pings(dataset, path)
        loaded = load_pings(path)
        assert set(loaded.timelines) == set(dataset.timelines)
        for key, timeline in dataset.timelines.items():
            assert np.allclose(
                timeline.rtt_ms, loaded.timelines[key].rtt_ms, equal_nan=True
            )
        assert loaded.grid.period_hours == dataset.grid.period_hours
