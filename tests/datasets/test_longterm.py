"""Tests for the long-term dataset builder."""

import numpy as np
import pytest

from repro.datasets.longterm import LongTermConfig, build_longterm_dataset
from repro.measurement.traceroute import TraceOutcome
from repro.net.ip import IPVersion


class TestBuild:
    def test_grid_shape(self, longterm):
        assert longterm.grid.period_hours == 3.0
        assert longterm.grid.rounds == 480  # 60 days at 3h

    def test_timelines_for_both_protocols(self, platform, longterm):
        dual_pairs = platform.server_pairs(dual_stack_only=True)
        assert len(longterm.timelines) == 2 * len(dual_pairs)

    def test_timeline_lengths_match_grid(self, longterm):
        for timeline in longterm.timelines.values():
            assert len(timeline) == longterm.grid.rounds

    def test_epoch_alignment_with_schedule(self, platform, longterm):
        """Samples inside a routing epoch carry that epoch's candidate."""
        src, dst = platform.server_pairs(dual_stack_only=True)[0]
        timeline = longterm.timeline(src.server_id, dst.server_id, IPVersion.V4)
        times = timeline.times_hours
        for epoch in platform.epochs(src, dst, IPVersion.V4)[:5]:
            inside = (times >= epoch.start_hour) & (times < epoch.end_hour)
            if not inside.any():
                continue
            candidates = np.unique(timeline.true_candidate[inside])
            assert candidates.size == 1
            assert candidates[0] == epoch.candidate_index

    def test_reached_fraction_near_75_percent(self, longterm):
        outcomes = np.concatenate(
            [timeline.outcome for timeline in longterm.timelines.values()]
        )
        reached = np.mean(outcomes != int(TraceOutcome.INCOMPLETE))
        assert 0.60 <= reached <= 0.85

    def test_paths_table_consistent(self, longterm):
        for timeline in longterm.timelines.values():
            used = timeline.path_id[timeline.path_id >= 0]
            if used.size:
                assert used.max() < len(timeline.paths)

    def test_forward_reverse_accessor(self, platform, longterm):
        src, dst = platform.server_pairs(dual_stack_only=True)[0]
        forward, reverse = longterm.forward_reverse(
            src.server_id, dst.server_id, IPVersion.V4
        )
        assert forward.pair == (src.server_id, dst.server_id)
        assert reverse.pair == (dst.server_id, src.server_id)

    def test_campaign_must_fit_platform_window(self, platform):
        with pytest.raises(ValueError):
            build_longterm_dataset(platform, LongTermConfig(days=10_000))

    def test_subset_of_pairs(self, platform):
        pairs = platform.server_pairs(dual_stack_only=True)[:2]
        dataset = build_longterm_dataset(
            platform, LongTermConfig(days=10), pairs=pairs
        )
        assert len(dataset.pairs()) == len({(s.server_id, d.server_id) for s, d in pairs})


class TestDeterminism:
    def test_rebuild_identical(self, platform):
        pairs = platform.server_pairs(dual_stack_only=True)[:3]
        first = build_longterm_dataset(platform, LongTermConfig(days=15), pairs=pairs)
        second = build_longterm_dataset(platform, LongTermConfig(days=15), pairs=pairs)
        for key, timeline in first.timelines.items():
            other = second.timelines[key]
            assert np.array_equal(timeline.outcome, other.outcome)
            assert np.allclose(timeline.rtt_ms, other.rtt_ms, equal_nan=True)
            assert np.array_equal(timeline.path_id, other.path_id)
            assert timeline.paths == other.paths
