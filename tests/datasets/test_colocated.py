"""Tests for the colocated-clusters campaign (Section 2.2)."""

import numpy as np
import pytest

from repro.datasets.colocated import build_colocated_dataset, colocated_pairs


class TestColocatedPairs:
    def test_pairs_share_city_and_differ(self, platform):
        for src, dst in colocated_pairs(platform):
            assert (src.city.city, src.city.country) == (
                dst.city.city, dst.city.country
            )
            assert src.cluster_id != dst.cluster_id
            assert src.asn != dst.asn

    def test_symmetric(self, platform):
        pairs = {(s.server_id, d.server_id) for s, d in colocated_pairs(platform)}
        for src_id, dst_id in pairs:
            assert (dst_id, src_id) in pairs


@pytest.fixture(scope="module")
def colocated_platform():
    """A deployment dense enough to colocate clusters (seed chosen so)."""
    from repro.measurement.platform import MeasurementPlatform, PlatformConfig

    return MeasurementPlatform(
        PlatformConfig(seed=3, cluster_count=25, duration_hours=30 * 24.0)
    )


class TestColocatedDataset:
    def test_builds_and_paths_stay_short(self, colocated_platform):
        platform = colocated_platform
        pairs = colocated_pairs(platform)
        assert pairs, "seed 3 at 25 clusters is known to colocate"
        dataset = build_colocated_dataset(platform, days=10.0)
        assert dataset.grid.period_hours == 0.5
        assert dataset.entries
        baselines = []
        for entry in dataset.entries.values():
            finite = entry.rtt_ms[np.isfinite(entry.rtt_ms)]
            if finite.size:
                baselines.append(float(np.percentile(finite, 10)))
        assert baselines
        # Colocated pairs can trombone through distant providers (boomerang
        # routing is real), but the *best* colocated pair routes locally.
        assert min(baselines) < 120.0
