"""Golden equivalence: the columnar plane must be invisible in output.

``repro.datasets.columnar`` replays the exact RNG draw sequence of the
per-round object builders as whole-epoch array operations, so every
observable artifact -- timeline arrays, JSONL bytes, figure metrics --
must match the object path bit for bit, at any seed and worker count.
These tests are the contract: a columnar kernel change that shifts a
single draw fails here before it can silently change any figure.
"""

from __future__ import annotations

import math

import pytest

from repro.datasets.io import iter_record_columns, save_records
from repro.datasets.longterm import LongTermConfig, build_longterm_dataset
from repro.datasets.shortterm import ShortTermConfig, build_shortterm_ping_dataset
from repro.harness.experiments import (
    experiment_congestion_norm,
    experiment_fig3,
    experiment_fig6,
)
from repro.measurement.platform import MeasurementPlatform, PlatformConfig
from repro.stream.columns import PingColumns, TraceColumns

SEEDS = [0, 7]
JOBS = [1, 2]

LONGTERM = LongTermConfig(days=30)
SHORTTERM = ShortTermConfig(ping_days=3.0)


def _make_platform(seed: int) -> MeasurementPlatform:
    return MeasurementPlatform(
        PlatformConfig(seed=seed, cluster_count=8, duration_hours=40 * 24.0)
    )


@pytest.fixture(scope="module", params=SEEDS)
def seeded_platform(request) -> MeasurementPlatform:
    return _make_platform(request.param)


def _assert_trace_timelines_equal(reference, candidate):
    assert set(reference.timelines) == set(candidate.timelines)
    for key, expected in reference.timelines.items():
        actual = candidate.timelines[key]
        assert actual.times_hours.tobytes() == expected.times_hours.tobytes()
        assert actual.rtt_ms.tobytes() == expected.rtt_ms.tobytes()
        assert actual.outcome.tobytes() == expected.outcome.tobytes()
        assert actual.path_id.tobytes() == expected.path_id.tobytes()
        assert actual.true_candidate.tobytes() == expected.true_candidate.tobytes()
        assert list(actual.paths) == list(expected.paths)


def _assert_ping_timelines_equal(reference, candidate):
    assert set(reference.timelines) == set(candidate.timelines)
    for key, expected in reference.timelines.items():
        actual = candidate.timelines[key]
        assert actual.times_hours.tobytes() == expected.times_hours.tobytes()
        assert actual.rtt_ms.tobytes() == expected.rtt_ms.tobytes()


class TestTimelineEquivalence:
    @pytest.mark.parametrize("jobs", JOBS)
    def test_longterm_columnar_matches_object(self, seeded_platform, jobs):
        reference = build_longterm_dataset(
            seeded_platform, LONGTERM, jobs=1, columnar=False
        )
        candidate = build_longterm_dataset(
            seeded_platform, LONGTERM, jobs=jobs, columnar=True
        )
        _assert_trace_timelines_equal(reference, candidate)

    @pytest.mark.parametrize("jobs", JOBS)
    def test_ping_columnar_matches_object(self, seeded_platform, jobs):
        reference = build_shortterm_ping_dataset(
            seeded_platform, SHORTTERM, jobs=1, columnar=False
        )
        candidate = build_shortterm_ping_dataset(
            seeded_platform, SHORTTERM, jobs=jobs, columnar=True
        )
        _assert_ping_timelines_equal(reference, candidate)


class TestJsonlCodecEquivalence:
    def test_column_blocks_encode_byte_identically(self, seeded_platform, tmp_path):
        longterm = build_longterm_dataset(seeded_platform, LONGTERM)
        pings = build_shortterm_ping_dataset(seeded_platform, SHORTTERM)
        blocks = [
            TraceColumns.from_timeline(timeline)
            for timeline in list(longterm.timelines.values())[:4]
        ] + [
            PingColumns.from_timeline(timeline)
            for timeline in list(pings.timelines.values())[:4]
        ]
        records = [record for block in blocks for record in block.records()]

        object_path = tmp_path / "objects.jsonl"
        column_path = tmp_path / "columns.jsonl"
        save_records(records, object_path)
        save_records(blocks, column_path)
        assert column_path.read_bytes() == object_path.read_bytes()

    def test_column_blocks_decode_round_trip(self, seeded_platform, tmp_path):
        longterm = build_longterm_dataset(seeded_platform, LONGTERM)
        blocks = [
            TraceColumns.from_timeline(timeline)
            for timeline in list(longterm.timelines.values())[:4]
        ]
        path = tmp_path / "trace.jsonl"
        save_records(blocks, path)

        decoded = list(iter_record_columns(path))
        assert len(decoded) == len(blocks)
        for original, restored in zip(blocks, decoded):
            assert isinstance(restored, TraceColumns)
            assert restored.key == original.key
            assert restored.times_hours.tobytes() == original.times_hours.tobytes()
            assert restored.rtt_ms.tobytes() == original.rtt_ms.tobytes()
            assert restored.outcome.tobytes() == original.outcome.tobytes()
            # Path table intern order may differ (the decoder interns in
            # first-appearance order); the per-round paths must not.
            for index in range(len(original)):
                left = original.path_id[index]
                right = restored.path_id[index]
                assert (left < 0) == (right < 0)
                if left >= 0:
                    assert original.paths[left] == restored.paths[right]

    def test_decoder_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro-records"):
            list(iter_record_columns(path))


def _metric_pairs(result):
    return [
        (metric.name, metric.measured) for metric in result.metrics
    ]


def _assert_metrics_equal(left, right):
    assert len(left) == len(right)
    for (left_name, left_value), (right_name, right_value) in zip(left, right):
        assert left_name == right_name
        if isinstance(left_value, float) and math.isnan(left_value):
            assert math.isnan(right_value)
        else:
            assert left_value == right_value


class TestFigureEquivalence:
    def test_figures_identical_across_paths(self, seeded_platform):
        object_longterm = build_longterm_dataset(
            seeded_platform, LONGTERM, columnar=False
        )
        columnar_longterm = build_longterm_dataset(
            seeded_platform, LONGTERM, columnar=True
        )
        object_pings = build_shortterm_ping_dataset(
            seeded_platform, SHORTTERM, columnar=False
        )
        columnar_pings = build_shortterm_ping_dataset(
            seeded_platform, SHORTTERM, columnar=True
        )
        for experiment, object_data, columnar_data in [
            (experiment_fig3, object_longterm, columnar_longterm),
            (experiment_fig6, object_longterm, columnar_longterm),
            (experiment_congestion_norm, object_pings, columnar_pings),
        ]:
            reference = experiment(object_data)
            candidate = experiment(columnar_data)
            assert reference.report == candidate.report
            _assert_metrics_equal(
                _metric_pairs(reference), _metric_pairs(candidate)
            )
