"""Tests for the campaign runtime: cycles, gates, durability, drivers."""

import json

import pytest

from repro.datasets.longterm import LongTermConfig
from repro.datasets.shortterm import ShortTermConfig
from repro.service.campaign import Campaign, driver_for
from repro.service.config import CampaignConfig
from repro.stream.mesh import MeshConfig

MESH = MeshConfig(pairs=512, block_pairs=128)  # 4 units per cycle


def _mesh_campaign(tmp_path, name="m", **overrides):
    fields = dict(
        name=name, kind="mesh", cycles=2, rounds_per_cycle=4,
        checkpoint_every=2, mesh=MESH,
    )
    fields.update(overrides)
    config = CampaignConfig(**fields)
    return Campaign(config, driver_for(config), tmp_path)


def _run_to_outcome(campaign, limit=20):
    for _ in range(limit):
        outcome = campaign.run_cycle()
        if outcome != "completed":
            return outcome
    raise AssertionError("campaign never finished")


class TestMeshCampaignLifecycle:
    def test_runs_to_finished_and_writes_results(self, tmp_path):
        campaign = _mesh_campaign(tmp_path)
        assert campaign.run_cycle() == "completed"
        assert campaign.cycle == 1
        assert campaign.run_cycle() == "finished"
        assert campaign.done
        assert campaign.results["cycles"] == 2
        assert campaign.results["samples"] == 512 * 8 * 2
        on_disk = json.loads(campaign.results_path.read_text())
        assert on_disk == campaign.results

    def test_finished_campaign_skips(self, tmp_path):
        campaign = _mesh_campaign(tmp_path)
        _run_to_outcome(campaign)
        assert campaign.run_cycle() == "skipped"

    def test_results_deterministic(self, tmp_path):
        a = _mesh_campaign(tmp_path / "a")
        b = _mesh_campaign(tmp_path / "b")
        _run_to_outcome(a)
        _run_to_outcome(b)
        assert a.results_path.read_bytes() == b.results_path.read_bytes()

    def test_sharded_matches_single_shard(self, tmp_path):
        single = _mesh_campaign(tmp_path / "one")
        sharded = _mesh_campaign(tmp_path / "two", shards=2)
        _run_to_outcome(single)
        _run_to_outcome(sharded)
        assert single.results_path.read_bytes() == sharded.results_path.read_bytes()


class TestGates:
    def test_drain_before_cycle_checkpoints_immediately(self, tmp_path):
        campaign = _mesh_campaign(tmp_path)
        campaign.request_drain()
        assert campaign.run_cycle() == "drained"
        assert campaign.store.load() is not None
        assert campaign.state == "drained"

    def test_drain_wins_over_pause(self, tmp_path):
        campaign = _mesh_campaign(tmp_path)
        campaign.pause()
        campaign.request_drain()
        assert campaign.run_cycle() == "drained"  # must not hang on the gate

    def test_pause_resume_flips_board_state(self, tmp_path):
        campaign = _mesh_campaign(tmp_path)
        campaign.pause()
        assert campaign.paused
        assert campaign.state == "paused"
        campaign.resume()
        assert not campaign.paused
        assert campaign.state == "idle"


class TestDurability:
    def test_restore_without_checkpoint_is_clean_start(self, tmp_path):
        campaign = _mesh_campaign(tmp_path)
        assert campaign.restore() is False
        assert (campaign.cycle, campaign.units_done) == (0, 0)

    def test_mid_cycle_drain_then_restore_is_byte_identical(self, tmp_path):
        reference = _mesh_campaign(tmp_path / "ref")
        _run_to_outcome(reference)

        campaign = _mesh_campaign(tmp_path / "live")
        gate = campaign._wait_gate
        calls = {"n": 0}

        def draining_gate():
            calls["n"] += 1
            if calls["n"] == 3:  # two units in: drain mid-cycle
                campaign.request_drain()
            return gate()

        campaign._wait_gate = draining_gate
        assert campaign.run_cycle() == "drained"
        assert campaign.units_done == 2

        resumed = _mesh_campaign(tmp_path / "live")
        assert resumed.restore() is True
        assert (resumed.cycle, resumed.units_done) == (0, 2)
        assert _run_to_outcome(resumed) == "finished"
        assert (
            resumed.results_path.read_bytes()
            == reference.results_path.read_bytes()
        )

    def test_restore_of_finished_campaign_serves_results(self, tmp_path):
        campaign = _mesh_campaign(tmp_path)
        _run_to_outcome(campaign)
        resumed = _mesh_campaign(tmp_path)
        assert resumed.restore() is True
        assert resumed.done
        assert resumed.results == campaign.results

    def test_config_change_orphans_checkpoint(self, tmp_path):
        campaign = _mesh_campaign(tmp_path)
        campaign.run_cycle()
        changed = _mesh_campaign(tmp_path, checkpoint_every=3)
        assert changed.restore() is False


class TestPlatformDrivers:
    def test_driver_for_requires_platform(self):
        with pytest.raises(ValueError, match="needs a platform"):
            driver_for(CampaignConfig(name="t", kind="trace"))

    def test_trace_cycles_match_one_uninterrupted_feed(self, platform, tmp_path):
        dataset_config = LongTermConfig(days=10.0)
        config = CampaignConfig(name="trace", kind="trace", rounds_per_cycle=30)
        driver = driver_for(config, platform, longterm_config=dataset_config)
        campaign = Campaign(config, driver, tmp_path)
        assert _run_to_outcome(campaign) == "finished"
        assert campaign.results["rounds"] == driver.grid.rounds

        batch = driver.make_operator()
        full = driver.source_for_cycle(0).source
        for unit in full:
            batch.start_unit(unit.key, unit.meta)
            batch.observe_columns(unit.columns)
        expected = driver.results(batch, campaign.cycle)
        completeness = campaign.results["completeness"]
        assert completeness["coverage"] == 1.0
        assert completeness["missing"] == []
        measured = {
            key: value for key, value in campaign.results.items()
            if key != "completeness"
        }
        assert measured == expected

    def test_ping_cycles_match_one_uninterrupted_feed(self, platform, tmp_path):
        dataset_config = ShortTermConfig(ping_days=2.0, trace_days=2.0)
        config = CampaignConfig(name="pings", kind="ping", rounds_per_cycle=64)
        driver = driver_for(config, platform, shortterm_config=dataset_config)
        campaign = Campaign(config, driver, tmp_path)
        assert _run_to_outcome(campaign) == "finished"

        batch = driver.make_operator()
        full = driver.source_for_cycle(0).source
        for unit in full:
            batch.start_unit(unit.key, unit.meta)
            batch.observe_columns(unit.columns)
        expected = driver.results(batch, campaign.cycle)
        assert campaign.results["completeness"]["coverage"] == 1.0
        measured = {
            key: value for key, value in campaign.results.items()
            if key != "completeness"
        }
        assert measured == expected
