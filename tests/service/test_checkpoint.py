"""Tests for the campaign checkpoint store."""

from repro.stream.snapshot import read_snapshot, write_snapshot

from repro.service.checkpoint import (
    CAMPAIGN_CHECKPOINT_SCHEMA,
    CampaignCheckpointStore,
    campaign_fingerprint,
)
from repro.service.config import CampaignConfig


class TestCampaignFingerprint:
    def test_stable_for_equal_configs(self):
        a = campaign_fingerprint(CampaignConfig(name="m"))
        b = campaign_fingerprint(CampaignConfig(name="m"))
        assert a == b

    def test_changes_with_any_knob(self):
        base = campaign_fingerprint(CampaignConfig(name="m"))
        assert base != campaign_fingerprint(CampaignConfig(name="m", shards=2))
        assert base != campaign_fingerprint(
            CampaignConfig(name="m", rounds_per_cycle=4)
        )
        assert base != campaign_fingerprint(CampaignConfig(name="other"))


class TestCampaignCheckpointStore:
    def _store(self, tmp_path, fingerprint="f" * 8):
        return CampaignCheckpointStore(tmp_path, "mesh", fingerprint)

    def test_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        store.save(3, 17, {"acc": 42})
        payload = store.load()
        assert payload["schema"] == CAMPAIGN_CHECKPOINT_SCHEMA
        assert payload["cycle"] == 3
        assert payload["units_done"] == 17
        assert payload["operator"] == {"acc": 42}
        assert payload["results"] is None

    def test_final_snapshot_carries_results(self, tmp_path):
        store = self._store(tmp_path)
        store.save(5, 0, {"acc": 1}, results={"samples": 9})
        assert store.load()["results"] == {"samples": 9}

    def test_missing_is_a_miss(self, tmp_path):
        assert self._store(tmp_path).load() is None

    def test_corrupt_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        store.save(1, 0, None)
        store.path.write_bytes(b"not a pickle")
        assert store.load() is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        store.save(1, 0, None)
        payload = read_snapshot(store.path)
        payload["schema"] = CAMPAIGN_CHECKPOINT_SCHEMA + 1
        write_snapshot(store.path, payload)
        assert store.load() is None

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        self._store(tmp_path, "old").save(2, 4, None)
        old = CampaignCheckpointStore(tmp_path, "mesh", "old")
        new = CampaignCheckpointStore(tmp_path, "mesh", "new")
        assert old.load() is not None
        assert new.load() is None  # different path entirely

    def test_save_leaves_no_temp_files(self, tmp_path):
        store = self._store(tmp_path)
        store.save(1, 1, None)
        store.save(2, 2, None)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_clear(self, tmp_path):
        store = self._store(tmp_path)
        store.save(1, 0, None)
        store.clear()
        assert store.load() is None
        store.clear()  # idempotent
