"""Tests for the asyncio supervisor and its HTTP control surface."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import live as obs_live
from repro.service.api import CAMPAIGNS_SCHEMA
from repro.service.config import CampaignConfig, ServiceConfig
from repro.service.supervisor import ServiceSupervisor
from repro.stream.mesh import MeshConfig

MESH = MeshConfig(pairs=512, block_pairs=128)


def _service_config(tmp_path, campaigns, **overrides):
    fields = dict(
        campaigns=tuple(campaigns),
        checkpoint_dir=str(tmp_path / "state"),
        time_scale=0.001,
        port=0,
    )
    fields.update(overrides)
    return ServiceConfig(**fields)


def _mesh(name, **overrides):
    fields = dict(
        name=name, kind="mesh", cadence_s=60.0, cycles=2,
        rounds_per_cycle=4, checkpoint_every=2, mesh=MESH,
    )
    fields.update(overrides)
    return CampaignConfig(**fields)


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.loads(response.read())


def _post(url):
    request = urllib.request.Request(url, method="POST")
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, json.loads(response.read())


class TestSupervisorRun:
    def test_two_campaigns_run_to_done(self, tmp_path):
        config = _service_config(tmp_path, [_mesh("a"), _mesh("b", cycles=3)])
        supervisor = ServiceSupervisor(config, serve=False)
        outcomes = supervisor.run()
        assert outcomes == {"a": "done", "b": "done"}
        assert supervisor.campaign("a").results_path.exists()
        assert supervisor.campaign("b").results["cycles"] == 3

    def test_drain_after_deadline_drains_everything(self, tmp_path):
        config = _service_config(
            tmp_path,
            [_mesh("slow", cycles=1000, cadence_s=0.05)],
            time_scale=1.0,
            drain_after_s=0.4,
        )
        supervisor = ServiceSupervisor(config, serve=False)
        outcomes = supervisor.run()
        assert outcomes == {"slow": "drained"}
        assert supervisor.draining
        assert supervisor.campaign("slow").store.load() is not None

    def test_restart_resumes_and_matches_uninterrupted(self, tmp_path):
        reference = _service_config(
            tmp_path / "ref", [_mesh("m", cycles=4)]
        )
        ServiceSupervisor(reference, serve=False).run()

        interrupted = _service_config(tmp_path / "live", [_mesh("m", cycles=4)])
        first = ServiceSupervisor(interrupted, serve=False)
        timer = threading.Timer(0.15, first.request_drain)
        timer.start()
        try:
            first.run()
        finally:
            timer.cancel()

        second = ServiceSupervisor(interrupted, serve=False)
        assert second.run() == {"m": "done"}
        assert (
            second.campaign("m").results_path.read_bytes()
            == ServiceSupervisor(reference, serve=False)
            .campaign("m")
            .results_path.read_bytes()
        )

    def test_status_board_reports_campaigns(self, tmp_path):
        config = _service_config(tmp_path, [_mesh("a")])
        ServiceSupervisor(config, serve=False).run()
        board = obs_live.get_status().as_dict()["campaigns"]
        assert [row["name"] for row in board] == ["a"]
        assert board[0]["state"] == "done"
        assert board[0]["cycle"] == 2


class TestDegradedCampaigns:
    def test_hung_cycle_races_drain_deadline_and_degrades(self, tmp_path):
        """A cycle that never returns must not block the drain deadline.

        The drain fires while the cycle hangs on the executor; after
        ``drain_grace_s`` the supervisor abandons the thread, parks the
        campaign as degraded, and still exits cleanly.
        """
        config = _service_config(
            tmp_path,
            [_mesh("hang", cycles=5, cadence_s=0.05)],
            time_scale=1.0,
            drain_after_s=0.2,
            drain_grace_s=0.2,
        )
        supervisor = ServiceSupervisor(config, serve=False)
        release = threading.Event()
        campaign = supervisor.campaign("hang")

        def hung_cycle():
            release.wait()
            return "completed"

        campaign.run_cycle = hung_cycle
        try:
            outcomes = supervisor.run()
        finally:
            release.set()  # unhang the fake so the executor thread exits
        assert outcomes == {"hang": "degraded"}
        assert campaign.state == "degraded"
        board = obs_live.get_status().as_dict()["campaigns"]
        assert board[0]["state"] == "degraded"
        assert board[0]["reason"] == "hung-cycle"

    def test_crash_loop_parks_campaign_as_degraded(self, tmp_path):
        from repro.faults.plane import RetryPolicy
        from repro.obs.metrics import get_registry

        retry = RetryPolicy(
            max_attempts=2, backoff_s=0.01, backoff_ceiling_s=0.02
        )
        config = _service_config(
            tmp_path, [_mesh("sick", retry=retry), _mesh("ok")]
        )
        supervisor = ServiceSupervisor(config, serve=False)
        sick = supervisor.campaign("sick")

        def failing_cycle():
            raise RuntimeError("boom")

        sick.run_cycle = failing_cycle
        outcomes = supervisor.run()
        # The crash-looping campaign degrades; its sibling still finishes.
        assert outcomes == {"sick": "degraded", "ok": "done"}
        assert sick.state == "degraded"
        registry = get_registry()
        assert registry.counter(
            "service.cycle_failures{campaign=sick}"
        ).value == 2
        assert registry.counter("campaign.degraded").value >= 1

    def test_degraded_campaign_visible_via_campaigns_route(self, tmp_path):
        config = _service_config(tmp_path, [_mesh("deg")])
        supervisor = ServiceSupervisor(config, serve=False)
        campaign = supervisor.campaign("deg")
        campaign.mark_degraded("crash-loop: 3 consecutive cycle failures")
        from repro.service.api import ServiceAPI

        class _Routes:
            def add_route(self, *args):
                pass

        payload = ServiceAPI(supervisor, _Routes()).campaigns_payload()
        (row,) = payload["campaigns"]
        assert row["state"] == "degraded"
        assert row["reason"].startswith("crash-loop")


class TestControlAPI:
    @pytest.fixture
    def running_service(self, tmp_path):
        """A served supervisor mid-run, paused so requests see it live."""
        config = _service_config(
            tmp_path,
            [_mesh("mesh-a", cycles=500, cadence_s=0.05)],
            time_scale=1.0,
        )
        supervisor = ServiceSupervisor(config)
        supervisor.campaign("mesh-a").pause()
        thread = threading.Thread(target=supervisor.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while supervisor.server is None or supervisor.server.url is None:
            assert time.monotonic() < deadline, "server never came up"
            time.sleep(0.01)
        yield supervisor
        supervisor.request_drain("test-teardown")
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_campaigns_document(self, running_service):
        status, payload = _get(f"{running_service.server.url}/campaigns")
        assert status == 200
        assert payload["schema"] == CAMPAIGNS_SCHEMA
        assert payload["draining"] is False
        assert payload["uptime_s"] >= 0
        (row,) = payload["campaigns"]
        assert row["name"] == "mesh-a"
        assert row["kind"] == "mesh"
        assert row["paused"] is True
        assert row["fingerprint"]
        assert row["shards"] == 1

    def test_pause_resume_roundtrip(self, running_service):
        url = running_service.server.url
        status, payload = _post(f"{url}/campaigns/mesh-a/resume")
        assert (status, payload["paused"]) == (200, False)
        assert not running_service.campaign("mesh-a").paused
        status, payload = _post(f"{url}/campaigns/mesh-a/pause")
        assert (status, payload["paused"]) == (200, True)
        assert running_service.campaign("mesh-a").paused

    def test_unknown_route_is_404(self, running_service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{running_service.server.url}/campaigns/nope/pause")
        assert excinfo.value.code == 404

    def test_drain_route_stops_the_service(self, running_service):
        status, payload = _post(f"{running_service.server.url}/drain")
        assert (status, payload["draining"]) == (202, True)
        assert running_service.draining
