"""Kill-and-restart durability: the service's headline contract.

A supervisor process killed mid-campaign -- gracefully (SIGTERM drains
to a checkpoint boundary) or brutally (SIGKILL, no goodbye) -- must,
when restarted against the same config, resume from its last checkpoint
and finish with results byte-identical to a never-interrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

_REPO_SRC = Path(__file__).resolve().parents[2] / "src"

# Enough cycles at a real-time cadence that the kill reliably lands
# mid-run; the resumed run is then compressed to finish immediately.
_CAMPAIGN = {
    "name": "mesh",
    "kind": "mesh",
    "cadence_s": 0.3,
    "cycles": 12,
    "rounds_per_cycle": 4,
    "checkpoint_every": 2,
    "mesh": {"pairs": 2048, "block_pairs": 256},
}


def _write_config(tmp_path, name):
    state = tmp_path / f"{name}-state"
    config = {
        "campaigns": [_CAMPAIGN],
        "checkpoint_dir": str(state),
        "port": 0,
    }
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(config))
    return path, state


def _run_service(config_path, *extra, check=True):
    process = subprocess.run(
        [sys.executable, "-m", "repro", "service", "run",
         "--config", str(config_path), "--time-scale", "0.001", *extra],
        env={**os.environ, "PYTHONPATH": str(_REPO_SRC)},
        capture_output=True,
        text=True,
        timeout=120,
    )
    if check:
        assert process.returncode == 0, process.stderr
    return process


def _start_service(config_path):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "service", "run",
         "--config", str(config_path)],
        env={**os.environ, "PYTHONPATH": str(_REPO_SRC)},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_checkpoint(state_dir, process, timeout=60):
    """Block until the campaign has durably saved at least once."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if list(state_dir.glob("campaign-mesh-*.ckpt")):
            return
        assert process.poll() is None, "service exited before checkpointing"
        time.sleep(0.05)
    raise AssertionError("no checkpoint appeared")


@pytest.fixture(scope="module")
def reference_results(tmp_path_factory):
    """One uninterrupted run's canonical results bytes."""
    tmp_path = tmp_path_factory.mktemp("reference")
    config_path, state = _write_config(tmp_path, "reference")
    _run_service(config_path)
    return (state / "results-mesh.json").read_bytes()


class TestKillAndRestart:
    def test_sigterm_drains_then_restart_is_byte_identical(
        self, tmp_path, reference_results
    ):
        config_path, state = _write_config(tmp_path, "sigterm")
        process = _start_service(config_path)
        try:
            _wait_for_checkpoint(state, process)
            assert process.poll() is None, "kill must land mid-run"
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0  # graceful drain
        finally:
            if process.poll() is None:
                process.kill()
        assert not (state / "results-mesh.json").exists()

        resumed = _run_service(config_path)
        assert "mesh: done" in resumed.stdout
        assert (state / "results-mesh.json").read_bytes() == reference_results

    def test_sigkill_then_restart_is_byte_identical(
        self, tmp_path, reference_results
    ):
        config_path, state = _write_config(tmp_path, "sigkill")
        process = _start_service(config_path)
        try:
            _wait_for_checkpoint(state, process)
            assert process.poll() is None, "kill must land mid-run"
            process.kill()
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()

        resumed = _run_service(config_path)
        assert "mesh: done" in resumed.stdout
        assert (state / "results-mesh.json").read_bytes() == reference_results
