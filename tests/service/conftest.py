"""Shared service-test isolation.

Campaign runs write to the live status board and the default metrics
registry; every test here starts and ends with both empty so service
tests neither see state from the wider suite nor leak any into it.
"""

import pytest

from repro.obs import live, metrics


@pytest.fixture(autouse=True)
def clean_service_state():
    metrics.get_registry().reset()
    live.get_status().reset()
    yield
    metrics.get_registry().reset()
    live.get_status().reset()
