"""Tests for the service/campaign config shapes and the JSON loader."""

import pytest

from repro.service.config import (
    CampaignConfig,
    ServiceConfig,
    service_config_from_dict,
)
from repro.stream.mesh import MeshConfig


class TestCampaignConfig:
    def test_defaults(self):
        config = CampaignConfig(name="mesh")
        assert config.kind == "mesh"
        assert config.shards == 1

    @pytest.mark.parametrize("name", ["", "has space", "has/slash", "a{b}"])
    def test_rejects_unroutable_names(self, name):
        with pytest.raises(ValueError, match="invalid campaign name"):
            CampaignConfig(name=name)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown campaign kind"):
            CampaignConfig(name="m", kind="icmp")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cadence_s": 0},
            {"rounds_per_cycle": 0},
            {"cycles": 0},
            {"shards": 0},
            {"queue_units": 0},
            {"checkpoint_every": 0},
        ],
    )
    def test_rejects_nonpositive_knobs(self, kwargs):
        with pytest.raises(ValueError):
            CampaignConfig(name="m", **kwargs)


class TestServiceConfig:
    def test_needs_campaigns(self):
        with pytest.raises(ValueError, match="at least one campaign"):
            ServiceConfig(campaigns=())

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate campaign names"):
            ServiceConfig(
                campaigns=(CampaignConfig(name="m"), CampaignConfig(name="m"))
            )

    @pytest.mark.parametrize(
        "kwargs",
        [{"time_scale": 0}, {"live_interval_s": 0}, {"drain_after_s": 0}],
    )
    def test_rejects_nonpositive_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(campaigns=(CampaignConfig(name="m"),), **kwargs)


class TestServiceConfigFromDict:
    def test_full_document(self):
        config = service_config_from_dict(
            {
                "campaigns": [
                    {
                        "name": "mesh",
                        "cycles": 2,
                        "mesh": {"pairs": 1024, "block_pairs": 256},
                    },
                    {"name": "pings", "kind": "ping", "cadence_s": 900},
                ],
                "scenario": "small",
                "time_scale": 0.01,
                "port": 0,
            }
        )
        assert [c.name for c in config.campaigns] == ["mesh", "pings"]
        assert config.campaigns[0].mesh == MeshConfig(pairs=1024, block_pairs=256)
        assert config.time_scale == 0.01

    def test_unknown_service_key_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown service keys"):
            service_config_from_dict(
                {"campaigns": [{"name": "m"}], "time_scael": 1.0}
            )

    def test_unknown_campaign_key_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown campaign keys"):
            service_config_from_dict({"campaigns": [{"name": "m", "shrads": 2}]})

    def test_unknown_mesh_key_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown mesh keys"):
            service_config_from_dict(
                {"campaigns": [{"name": "m", "mesh": {"pears": 7}}]}
            )

    @pytest.mark.parametrize(
        "payload",
        [[], {"campaigns": {}}, {"campaigns": ["m"]},
         {"campaigns": [{"name": "m", "mesh": 3}]}],
    )
    def test_rejects_malformed_documents(self, payload):
        with pytest.raises(ValueError):
            service_config_from_dict(payload)
