"""Tests for congested-segment localization on synthetic and simulated data."""

import numpy as np
import pytest

from repro.core.localization import localize_congestion, segment_correlations
from repro.datasets.shortterm import SegmentSeries
from repro.net.ip import IPAddress, IPVersion


def _synthetic_entry(congested_hop=3, n_hops=6, days=10.0, amplitude=25.0, seed=0):
    """Hop matrix with a diurnal bump entering at ``congested_hop``."""
    rng = np.random.default_rng(seed)
    times = np.arange(0.0, days * 24.0, 0.5)
    diurnal = amplitude * np.maximum(0.0, np.sin(2 * np.pi * times / 24.0))
    hop_rtt = np.empty((n_hops, times.size), dtype=np.float32)
    for hop in range(n_hops):
        base = 10.0 * (hop + 1)
        noise = rng.gamma(2.0, 0.5, times.size)
        hop_rtt[hop] = base + noise + (diurnal if hop >= congested_hop else 0.0)
    addresses = tuple(IPAddress.v4(1000 + hop) for hop in range(n_hops))
    return SegmentSeries(
        src_server_id=0,
        dst_server_id=1,
        version=IPVersion.V4,
        times_hours=times,
        hop_rtt_ms=hop_rtt,
        hop_addresses=addresses,
        hop_mapped_asn=tuple(100 + hop for hop in range(n_hops)),
        hop_owner_truth=tuple(100 + hop for hop in range(n_hops)),
        segment_keys=tuple(("x", hop) for hop in range(n_hops)),
        rtt_ms=hop_rtt[-1],
        static_path=True,
        observed_as_path=tuple(range(100, 100 + n_hops)),
    )


class TestSyntheticLocalization:
    def test_locates_exact_hop(self):
        entry = _synthetic_entry(congested_hop=3)
        result = localize_congestion(entry)
        assert result.located
        assert result.congested_hop == 3
        assert result.link == (entry.hop_addresses[2], entry.hop_addresses[3])

    def test_first_hop_congestion(self):
        entry = _synthetic_entry(congested_hop=0)
        result = localize_congestion(entry)
        assert result.congested_hop == 0
        assert result.link[0] is None

    def test_correlations_monotone_after_congested_hop(self):
        """The paper's insight: once a segment crosses the threshold, the
        following segments correlate comparably or higher."""
        entry = _synthetic_entry(congested_hop=2)
        correlations = segment_correlations(entry)
        for hop in range(2, len(correlations)):
            assert correlations[hop] > 0.5
        for hop in range(0, 2):
            assert correlations[hop] < 0.5

    def test_no_diurnal_no_localization(self):
        entry = _synthetic_entry(amplitude=0.0)
        result = localize_congestion(entry)
        assert not result.located
        assert not result.end_to_end_diurnal

    def test_small_amplitude_fails_spread_gate(self):
        entry = _synthetic_entry(amplitude=6.0)
        result = localize_congestion(entry)
        assert not result.located

    def test_threshold_sweep(self):
        entry = _synthetic_entry(congested_hop=3)
        strict = localize_congestion(entry, rho_threshold=0.99)
        normal = localize_congestion(entry, rho_threshold=0.5)
        assert normal.congested_hop == 3
        # A near-impossible threshold may fail to locate at all.
        assert strict.congested_hop in (None, 3)

    def test_unresponsive_hops_skipped(self):
        entry = _synthetic_entry(congested_hop=3)
        entry.hop_rtt_ms[2, :] = np.nan  # hop before the congestion is silent
        result = localize_congestion(entry)
        assert result.congested_hop == 3


class TestSimulatedLocalization:
    def test_located_links_match_ground_truth_keys(self, platform, trace_dataset):
        """On simulator data, located hops usually sit at truly congested
        segments (or immediately downstream of one)."""
        congested = set(platform.congestion.congested_keys())
        checked = correct = 0
        for entry in trace_dataset.entries.values():
            if not entry.static_path:
                continue
            result = localize_congestion(entry)
            if not result.located:
                continue
            checked += 1
            keys_up_to_hop = set(entry.segment_keys[: result.congested_hop + 1])
            if keys_up_to_hop & congested:
                correct += 1
        if checked == 0:
            pytest.skip("session seed produced no locatable entries")
        assert correct / checked >= 0.7
