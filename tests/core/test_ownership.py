"""Tests for the six router-ownership heuristics.

Hand-built paths check each heuristic in isolation; the simulated-platform
test scores overall accuracy against the generator's ground truth.
"""

import pytest

from repro.core.ownership import HopView, infer_ownership
from repro.net.asn import ASRelationship, RelationshipTable
from repro.net.ip import IPAddress, IPVersion


def addr(value: int) -> IPAddress:
    return IPAddress.v4(value)


@pytest.fixture()
def relationships():
    table = RelationshipTable()
    table.add(10, 20, ASRelationship.CUSTOMER)   # 20 is customer of 10
    table.add(10, 30, ASRelationship.PEER)
    table.add(30, 20, ASRelationship.PEER)
    return table


class TestFirstHeuristic:
    def test_labels_first_of_same_as_pair(self, relationships):
        path = [HopView(addr(1), 10), HopView(addr(2), 10), HopView(addr(3), 20)]
        inference = infer_ownership([path], relationships)
        assert inference.owner(addr(1)) == 10
        assert ("first" in {h for _, h in inference.labels[addr(1)]})


class TestNoIP2ASHeuristic:
    def test_unmapped_hop_between_same_as(self, relationships):
        path = [HopView(addr(1), 10), HopView(addr(2), None), HopView(addr(3), 10)]
        inference = infer_ownership([path], relationships)
        assert inference.owner(addr(2)) == 10

    def test_unmapped_hop_between_different_as_unlabeled(self, relationships):
        path = [HopView(addr(1), 10), HopView(addr(2), None), HopView(addr(3), 20)]
        inference = infer_ownership([path], relationships)
        assert inference.owner(addr(2)) is None


class TestCustomerHeuristic:
    def test_provider_addressed_interconnect(self, relationships):
        # IPx, IPy announced by provider 10; IPz by customer 20: the
        # interconnect interface IPy belongs to the customer.
        path = [HopView(addr(1), 10), HopView(addr(2), 10), HopView(addr(3), 20)]
        inference = infer_ownership([path], relationships)
        assert inference.owner(addr(2)) == 20

    def test_not_applied_between_peers(self, relationships):
        path = [HopView(addr(1), 10), HopView(addr(2), 10), HopView(addr(3), 30)]
        inference = infer_ownership([path], relationships)
        candidates = inference.candidates(addr(2))
        assert 30 not in candidates


class TestProviderHeuristic:
    def test_provider_facing_interface(self, relationships):
        # Crossing from customer 20 into provider 10: IPy announced by 10
        # on the provider's router.
        path = [HopView(addr(1), 20), HopView(addr(2), 10), HopView(addr(3), 10)]
        inference = infer_ownership([path], relationships)
        assert inference.owner(addr(2)) == 10
        assert any(h == "provider" for _, h in inference.labels[addr(2)])


class TestGraphHeuristics:
    def test_back_heuristic(self, relationships):
        # Three predecessors of a common next hop; two already labeled 10
        # (via 'first'), the third also announced by 10 gets back-labeled.
        paths = [
            [HopView(addr(1), 10), HopView(addr(5), 10), HopView(addr(9), 20)],
            [HopView(addr(2), 10), HopView(addr(5), 10), HopView(addr(9), 20)],
            [HopView(addr(3), 10), HopView(addr(5), 10)],
        ]
        # addr(1), addr(2) get 'first' labels; addr(3) is followed only by
        # addr(5) once and has no own label yet.
        inference = infer_ownership(paths, relationships, passes=3)
        assert inference.owner(addr(3)) == 10

    def test_forward_heuristic(self, relationships):
        # Unlabeled, unmapped IPx whose observed links all lead to labeled
        # AS-20 interfaces.
        paths = [
            [HopView(addr(7), None), HopView(addr(11), 20), HopView(addr(12), 20)],
            [HopView(addr(7), None), HopView(addr(13), 20), HopView(addr(14), 20)],
        ]
        inference = infer_ownership(paths, relationships, passes=3)
        assert inference.owner(addr(7)) == 20


class TestResolution:
    def test_single_candidate_wins(self, relationships):
        path = [HopView(addr(1), 10), HopView(addr(2), 10)]
        inference = infer_ownership([path], relationships)
        assert inference.owner(addr(1)) == 10

    def test_conflict_resolved_by_first_majority(self, relationships):
        # addr(2) is labeled 20 by the customer heuristic once, but 'first'
        # labels it 10 repeatedly: the most frequent label came from
        # 'first', so 10 wins.
        conflict = [HopView(addr(1), 10), HopView(addr(2), 10), HopView(addr(3), 20)]
        reinforce = [HopView(addr(2), 10), HopView(addr(4), 10)]
        inference = infer_ownership(
            [conflict, reinforce, reinforce, reinforce], relationships
        )
        assert inference.owner(addr(2)) == 10

    def test_unseen_address_is_none(self, relationships):
        inference = infer_ownership([], relationships)
        assert inference.owner(addr(99)) is None


class TestSimulatedAccuracy:
    def test_accuracy_against_ground_truth(self, platform):
        """Resolved owners should overwhelmingly match the simulator's
        ground-truth interface owners."""
        from repro.net.ip import IPVersion as V

        paths = []
        for src, dst in platform.server_pairs():
            for version in (V.V4, V.V6):
                realization = platform.realization(src, dst, version, 0)
                if realization is None:
                    continue
                paths.append(
                    [HopView(hop.address, hop.mapped_asn) for hop in realization.hops]
                )
        inference = infer_ownership(paths, platform.graph.relationships, passes=3)
        checked = correct = 0
        for address in inference.labeled_addresses():
            owner = inference.owner(address)
            if owner is None:
                continue
            truth = platform.topology.interface_owner(address)
            if truth is None:
                continue  # a server address
            checked += 1
            if owner == truth:
                correct += 1
        assert checked > 50
        assert correct / checked >= 0.9

    def test_coverage_over_half_of_interfaces(self, platform):
        paths = []
        for src, dst in platform.server_pairs():
            realization = platform.realization(src, dst, IPVersion.V4, 0)
            if realization is None:
                continue
            paths.append(
                [HopView(hop.address, hop.mapped_asn) for hop in realization.hops]
            )
        inference = infer_ownership(paths, platform.graph.relationships, passes=3)
        seen = {hop.address for path in paths for hop in path}
        resolved = sum(
            1 for address in seen if inference.owner(address) is not None
        )
        assert resolved / len(seen) > 0.5
