"""Tests for the FFT diurnal-congestion detector on synthetic signals."""

import numpy as np
import pytest

from repro.core.congestion import (
    CongestionDetector,
    congestion_population_stats,
    diurnal_power_ratio,
)
from repro.datasets.timeline import PingTimeline
from repro.net.ip import IPVersion


def _times(days=7.0, period=0.25):
    return np.arange(0.0, days * 24.0, period)


def _diurnal(times, amplitude=20.0, base=50.0):
    return base + amplitude * np.maximum(0.0, np.sin(2 * np.pi * times / 24.0))


class TestPowerRatio:
    def test_pure_diurnal_has_high_ratio(self):
        times = _times()
        ratio = diurnal_power_ratio(times, _diurnal(times))
        assert ratio > 0.8

    def test_white_noise_has_low_ratio(self):
        times = _times()
        rng = np.random.default_rng(1)
        ratio = diurnal_power_ratio(times, 50.0 + rng.normal(0, 3, times.size))
        assert ratio < 0.15

    def test_constant_series_zero_ratio(self):
        times = _times()
        assert diurnal_power_ratio(times, np.full(times.size, 42.0)) == 0.0

    def test_non_daily_oscillation_rejected(self):
        times = _times()
        six_hourly = 50.0 + 20.0 * np.sin(2 * np.pi * times / 6.0)
        assert diurnal_power_ratio(times, six_hourly) < 0.2

    def test_nan_interpolation(self):
        times = _times()
        signal = _diurnal(times)
        signal[::7] = np.nan
        assert diurnal_power_ratio(times, signal) > 0.7

    def test_too_few_samples(self):
        assert np.isnan(diurnal_power_ratio(np.arange(3.0), np.ones(3)))

    def test_window_shorter_than_a_day(self):
        times = np.arange(0.0, 12.0, 0.25)
        assert np.isnan(diurnal_power_ratio(times, np.ones(times.size)))

    def test_band_captures_leakage(self):
        # 6.5 days of data: the daily frequency falls between FFT bins.
        times = np.arange(0.0, 6.5 * 24.0, 0.25)
        ratio = diurnal_power_ratio(times, _diurnal(times), band=1)
        assert ratio > 0.6


class TestDetector:
    def _timeline(self, rtts, times=None):
        times = times if times is not None else _times()
        return PingTimeline(
            src_server_id=0, dst_server_id=1, version=IPVersion.V4,
            times_hours=times, rtt_ms=np.asarray(rtts, dtype=np.float32),
        )

    def test_congested_pair_detected(self):
        times = _times()
        rng = np.random.default_rng(2)
        verdict = CongestionDetector().assess(
            self._timeline(_diurnal(times, amplitude=25.0) + rng.normal(0, 1, times.size))
        )
        assert verdict.congested
        assert verdict.spread_ms > 10.0
        assert verdict.power_ratio >= 0.3

    def test_quiet_pair_not_congested(self):
        times = _times()
        rng = np.random.default_rng(3)
        verdict = CongestionDetector().assess(
            self._timeline(50.0 + rng.gamma(2.0, 0.5, times.size))
        )
        assert not verdict.congested

    def test_small_diurnal_fails_spread_test(self):
        """A clean daily wiggle below 10 ms is not 'consistent congestion'."""
        times = _times()
        verdict = CongestionDetector().assess(
            self._timeline(_diurnal(times, amplitude=4.0))
        )
        assert verdict.diurnal
        assert not verdict.spread_exceeds
        assert not verdict.congested

    def test_level_shift_without_diurnal_fails_fft_test(self):
        """A routing level shift has spread but no daily period."""
        times = _times()
        rtts = np.where(times < 80.0, 50.0, 90.0)
        verdict = CongestionDetector().assess(self._timeline(rtts))
        assert verdict.spread_exceeds
        assert not verdict.congested

    def test_threshold_configurable(self):
        times = _times()
        weak = _diurnal(times, amplitude=12.0) + np.random.default_rng(4).normal(
            0, 6, times.size
        )
        strict = CongestionDetector(power_ratio_threshold=0.9)
        lax = CongestionDetector(power_ratio_threshold=0.05)
        assert not strict.assess(self._timeline(weak)).diurnal
        assert lax.assess(self._timeline(weak)).diurnal


class TestPopulationStats:
    def test_counts(self):
        times = _times()
        rng = np.random.default_rng(5)
        congested = PingTimeline(
            0, 1, IPVersion.V4, times,
            np.asarray(_diurnal(times, 25.0) + rng.normal(0, 1, times.size), np.float32),
        )
        quiet = PingTimeline(
            2, 3, IPVersion.V4, times,
            np.asarray(50.0 + rng.gamma(2, 0.5, times.size), np.float32),
        )
        stats = congestion_population_stats([congested, quiet])
        assert stats.pairs == 2
        assert stats.congested == 1
        assert stats.congested_fraction == pytest.approx(0.5)

    def test_sparse_pairs_excluded(self):
        times = _times()
        sparse = np.full(times.size, np.nan, dtype=np.float32)
        sparse[:100] = 50.0
        timeline = PingTimeline(0, 1, IPVersion.V4, times, sparse)
        stats = congestion_population_stats([timeline])
        assert stats.pairs == 0
