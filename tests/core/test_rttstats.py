"""Tests for per-AS-path RTT statistics."""

import numpy as np
import pytest

from repro.core.rttstats import (
    best_path_id,
    path_percentiles,
    path_rtt_std,
    rtt_increase_from_best,
)
from tests.core.test_routechange import make_timeline


def timeline_with_rtts(path_ids, rtts):
    timeline = make_timeline(path_ids)
    timeline.rtt_ms = np.asarray(rtts, dtype=np.float32)
    return timeline


class TestPercentiles:
    def test_bucket_percentiles(self):
        timeline = timeline_with_rtts(
            [0] * 10 + [1] * 10,
            list(np.linspace(10, 20, 10)) + list(np.linspace(50, 60, 10)),
        )
        p10 = path_percentiles(timeline, 10.0)
        assert p10[0] == pytest.approx(10.9, abs=0.5)
        assert p10[1] == pytest.approx(50.9, abs=0.5)

    def test_small_buckets_dropped(self):
        timeline = timeline_with_rtts([0, 0, 0, 1], [10, 11, 12, 99])
        assert 1 not in path_percentiles(timeline, 10.0)

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            path_percentiles(make_timeline([0]), 150.0)

    def test_std(self):
        timeline = timeline_with_rtts([0] * 4, [10, 10, 10, 10])
        assert path_rtt_std(timeline)[0] == pytest.approx(0.0)


class TestBestPath:
    def test_lowest_baseline_wins(self):
        timeline = timeline_with_rtts(
            [0] * 5 + [1] * 5, [30] * 5 + [10] * 5
        )
        assert best_path_id(timeline) == 1

    def test_none_when_no_measurable_bucket(self):
        timeline = timeline_with_rtts([0], [10])
        assert best_path_id(timeline) is None


class TestIncreaseFromBest:
    def test_increase_values(self):
        timeline = timeline_with_rtts(
            [0] * 5 + [1] * 5, [10] * 5 + [36] * 5
        )
        increases = rtt_increase_from_best(timeline, q=10.0)
        assert set(increases) == {1}
        assert increases[1] == pytest.approx(26.0)

    def test_single_path_yields_empty(self):
        timeline = timeline_with_rtts([0] * 5, [10] * 5)
        assert rtt_increase_from_best(timeline) == {}

    def test_best_path_excluded(self):
        timeline = timeline_with_rtts([0] * 5 + [1] * 5, [10] * 5 + [20] * 5)
        increases = rtt_increase_from_best(timeline)
        assert 0 not in increases

    def test_90th_percentile_mode(self):
        # Path 0 has a low baseline but huge spikes; path 1 is steady.
        rtts = [10, 10, 10, 200, 200] + [50] * 5
        timeline = timeline_with_rtts([0] * 5 + [1] * 5, rtts)
        by_10 = rtt_increase_from_best(timeline, q=10.0)
        by_90 = rtt_increase_from_best(timeline, q=90.0)
        assert set(by_10) == {1}   # path 0 best by baseline
        assert set(by_90) == {0}   # path 1 best by spike-inclusive view

    def test_nan_rtts_ignored(self):
        rtts = [10, np.nan, 10, 10, 40, 40, np.nan, 40]
        timeline = timeline_with_rtts([0] * 4 + [1] * 4, rtts)
        increases = rtt_increase_from_best(timeline)
        assert increases[1] == pytest.approx(30.0, abs=1.0)
