"""Tests for routing-change statistics."""

import numpy as np
import pytest

from repro.core.routechange import (
    analyze_timeline,
    as_path_pair_count,
    change_count,
    change_events,
    path_lifetimes,
    path_prevalence,
    popular_path,
)
from repro.datasets.timeline import TraceTimeline
from repro.measurement.traceroute import TraceOutcome
from repro.net.ip import IPVersion

COMPLETE = int(TraceOutcome.COMPLETE)
LOOP = int(TraceOutcome.LOOP)
INCOMPLETE = int(TraceOutcome.INCOMPLETE)


def make_timeline(path_ids, outcomes=None, paths=None, period=3.0):
    count = len(path_ids)
    outcomes = outcomes if outcomes is not None else [COMPLETE] * count
    max_id = max((p for p in path_ids if p >= 0), default=0)
    paths = paths if paths is not None else [
        (1, 100 + index, 2) for index in range(max_id + 1)
    ]
    return TraceTimeline(
        src_server_id=0,
        dst_server_id=1,
        version=IPVersion.V4,
        times_hours=period * np.arange(count),
        rtt_ms=np.full(count, 10.0, dtype=np.float32),
        outcome=np.asarray(outcomes, dtype=np.uint8),
        path_id=np.asarray(path_ids, dtype=np.int32),
        paths=paths,
        true_candidate=np.zeros(count, dtype=np.int16),
    )


class TestChangeCount:
    def test_no_changes(self):
        assert change_count(make_timeline([0, 0, 0, 0])) == 0

    def test_single_change(self):
        assert change_count(make_timeline([0, 0, 1, 1])) == 1

    def test_change_and_return(self):
        assert change_count(make_timeline([0, 1, 0])) == 2

    def test_unusable_samples_skipped(self):
        # The loop sample between the 0s does not create changes.
        timeline = make_timeline([0, 1, 0], outcomes=[COMPLETE, LOOP, COMPLETE])
        assert change_count(timeline) == 0

    def test_gap_across_incomplete(self):
        timeline = make_timeline(
            [0, -1, 1], outcomes=[COMPLETE, INCOMPLETE, COMPLETE]
        )
        assert change_count(timeline) == 1

    def test_empty_timeline(self):
        assert change_count(make_timeline([])) == 0


class TestChangeEvents:
    def test_event_details(self):
        timeline = make_timeline([0, 0, 1])
        events = change_events(timeline)
        assert len(events) == 1
        event = events[0]
        assert event.time_hours == pytest.approx(6.0)  # change at the later sample
        assert event.old_path == timeline.paths[0]
        assert event.new_path == timeline.paths[1]
        assert event.distance >= 1

    def test_distances_use_edit_distance(self):
        paths = [(1, 2, 3, 4), (1, 2, 4)]
        timeline = make_timeline([0, 1], paths=paths)
        assert change_events(timeline)[0].distance == 1


class TestLifetimes:
    def test_each_observation_extends_by_period(self):
        timeline = make_timeline([0, 0, 1], period=3.0)
        lifetimes = path_lifetimes(timeline)
        assert lifetimes[0] == pytest.approx(6.0)
        assert lifetimes[1] == pytest.approx(3.0)

    def test_noncontiguous_observations_accumulate(self):
        timeline = make_timeline([0, 1, 0, 1], period=3.0)
        lifetimes = path_lifetimes(timeline)
        assert lifetimes[0] == lifetimes[1] == pytest.approx(6.0)

    def test_explicit_period(self):
        timeline = make_timeline([0, 0], period=3.0)
        assert path_lifetimes(timeline, period_hours=0.5)[0] == pytest.approx(1.0)


class TestPrevalence:
    def test_sums_to_one(self):
        timeline = make_timeline([0, 0, 1, 2])
        assert sum(path_prevalence(timeline).values()) == pytest.approx(1.0)

    def test_popular_path(self):
        timeline = make_timeline([0, 0, 0, 1])
        path_id, prevalence = popular_path(timeline)
        assert path_id == 0
        assert prevalence == pytest.approx(0.75)

    def test_empty(self):
        assert popular_path(make_timeline([])) == (None, 0.0)


class TestAnalyzeTimeline:
    def test_consistency(self):
        timeline = make_timeline([0, 0, 1, 1, 0])
        stats = analyze_timeline(timeline)
        assert stats.unique_paths == 2
        assert stats.changes == 2
        assert stats.popular_path_id == 0
        assert stats.pair == (0, 1)


class TestPathPairs:
    def test_pair_counting(self):
        forward = make_timeline([0, 0, 1, 1])
        reverse = make_timeline([0, 1, 1, 1])
        # Rounds pair up as (0,0), (0,1), (1,1), (1,1): three unique pairs.
        assert as_path_pair_count(forward, reverse) == 3

    def test_skips_rounds_missing_either_side(self):
        forward = make_timeline([0, 0], outcomes=[COMPLETE, INCOMPLETE])
        reverse = make_timeline([0, 1], outcomes=[COMPLETE, COMPLETE])
        assert as_path_pair_count(forward, reverse) == 1

    def test_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            as_path_pair_count(make_timeline([0]), make_timeline([0, 0]))
