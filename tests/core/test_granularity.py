"""Tests for the granularity-sensitivity analysis (Figure 7)."""

import numpy as np
import pytest

from repro.core.granularity import compare_granularity, subsample_timeline
from tests.core.test_routechange import make_timeline
from tests.core.test_rttstats import timeline_with_rtts


class TestSubsample:
    def test_minimum_gap_respected(self):
        timeline = make_timeline([0] * 48, period=0.5)  # 24 hours at 30 min
        coarse = subsample_timeline(timeline, min_gap_hours=3.0)
        gaps = np.diff(coarse.times_hours)
        assert (gaps >= 3.0 - 1e-9).all()
        assert len(coarse) == 8

    def test_first_sample_kept(self):
        timeline = make_timeline([0] * 10, period=0.5)
        coarse = subsample_timeline(timeline)
        assert coarse.times_hours[0] == timeline.times_hours[0]

    def test_paths_shared_with_parent(self):
        timeline = make_timeline([0, 1] * 10, period=0.5)
        coarse = subsample_timeline(timeline)
        assert coarse.paths is timeline.paths

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            subsample_timeline(make_timeline([0]), min_gap_hours=0.0)

    def test_already_coarse_unchanged(self):
        timeline = make_timeline([0] * 10, period=3.0)
        coarse = subsample_timeline(timeline, min_gap_hours=3.0)
        assert len(coarse) == len(timeline)


class TestCompare:
    def test_stationary_series_agree(self):
        """When per-path RTT distributions are stationary, the subsampled
        increase ECDF matches the full one -- the paper's Figure 7 point."""
        rng = np.random.default_rng(1)
        timelines = []
        for _ in range(30):
            count = 24 * 2 * 10  # 10 days at 30 minutes
            half = count // 2
            rtts = np.concatenate([
                10.0 + rng.gamma(2, 1, half),
                40.0 + rng.gamma(2, 1, count - half),
            ])
            timeline = timeline_with_rtts([0] * half + [1] * (count - half), rtts)
            timeline.times_hours = 0.5 * np.arange(count)
            timelines.append(timeline)
        comparison = compare_granularity(timelines, q=10.0)
        assert comparison.max_quantile_gap() < 3.0

    def test_empty_input(self):
        comparison = compare_granularity([])
        assert len(comparison.all_increases) == 0
        assert np.isnan(comparison.max_quantile_gap())
