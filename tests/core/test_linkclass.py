"""Tests for congested-link classification."""

import pytest

from repro.core.linkclass import LinkClass, LinkClassifier, LinkMediumClass
from repro.core.ownership import OwnershipInference
from repro.net.asn import ASRelationship, RelationshipTable
from repro.net.ip import IPAddress
from repro.net.prefix import Prefix


def addr(value: int) -> IPAddress:
    return IPAddress.v4(value)


@pytest.fixture()
def classifier():
    relationships = RelationshipTable()
    relationships.add(10, 20, ASRelationship.CUSTOMER)  # 20 customer of 10
    relationships.add(10, 30, ASRelationship.PEER)
    ownership = OwnershipInference()
    owners = {
        addr(1): 10, addr(2): 10,            # internal link in AS 10
        addr(3): 10, addr(4): 20,            # c2p link
        addr(5): 10, addr(6): 30,            # p2p link
        addr(7): None,                       # unresolved
        addr(8): 10,
        # public peering over an IXP LAN address
        addr(0xC1000001): 10, addr(0xC1000002): 30,
    }
    ownership.owners.update(owners)
    return LinkClassifier(
        relationships=relationships,
        ownership=ownership,
        ixp_prefixes=[Prefix.parse("193.0.0.0/16")],
    )


class TestClassification:
    def test_internal(self, classifier):
        link = classifier.add(addr(1), addr(2))
        assert link.link_class is LinkClass.INTERNAL
        assert not link.link_class.is_interconnection
        assert link.medium is LinkMediumClass.NOT_APPLICABLE

    def test_c2p(self, classifier):
        link = classifier.add(addr(3), addr(4))
        assert link.link_class is LinkClass.INTERCONNECTION_C2P
        assert link.medium is LinkMediumClass.PRIVATE

    def test_p2p(self, classifier):
        link = classifier.add(addr(5), addr(6))
        assert link.link_class is LinkClass.INTERCONNECTION_P2P

    def test_unresolved_side_is_unknown(self, classifier):
        link = classifier.add(addr(7), addr(8))
        assert link.link_class is LinkClass.UNKNOWN

    def test_missing_near_is_unknown(self, classifier):
        link = classifier.add(None, addr(8))
        assert link.link_class is LinkClass.UNKNOWN

    def test_ixp_addresses_classified_public(self, classifier):
        # 0xC1000001 == 193.0.0.1, inside the configured IXP prefix.
        link = classifier.add(addr(0xC1000001), addr(0xC1000002))
        assert link.link_class is LinkClass.INTERCONNECTION_P2P
        assert link.medium is LinkMediumClass.PUBLIC_IXP


class TestAggregation:
    def test_crossings_accumulate(self, classifier):
        classifier.add(addr(1), addr(2))
        link = classifier.add(addr(1), addr(2))
        assert link.crossings == 2
        assert classifier.weighted_counts()[LinkClass.INTERNAL] == 2
        assert classifier.counts()[LinkClass.INTERNAL] == 1

    def test_counts_by_class(self, classifier):
        classifier.add(addr(1), addr(2))
        classifier.add(addr(3), addr(4))
        classifier.add(addr(5), addr(6))
        classifier.add(addr(7), addr(8))
        counts = classifier.counts()
        assert counts[LinkClass.INTERNAL] == 1
        assert counts[LinkClass.INTERCONNECTION_C2P] == 1
        assert counts[LinkClass.INTERCONNECTION_P2P] == 1
        assert counts[LinkClass.UNKNOWN] == 1

    def test_medium_counts_only_interconnections(self, classifier):
        classifier.add(addr(1), addr(2))          # internal: not counted
        classifier.add(addr(3), addr(4))          # private c2p
        classifier.add(addr(0xC1000001), addr(0xC1000002))  # public p2p
        media = classifier.medium_counts()
        assert media[LinkMediumClass.PRIVATE] == 1
        assert media[LinkMediumClass.PUBLIC_IXP] == 1

    def test_links_sorted_by_weight(self, classifier):
        classifier.add(addr(3), addr(4))
        classifier.add(addr(1), addr(2))
        classifier.add(addr(1), addr(2))
        links = classifier.links()
        assert links[0].crossings >= links[-1].crossings
