"""Tests for the Table 1 summary."""

import pytest

from repro.core.summary import dataset_summary
from repro.net.ip import IPVersion


class TestSummary:
    def test_rows_partition_reached(self, longterm):
        summaries = dataset_summary(longterm)
        for summary in summaries.values():
            assert (
                summary.complete_as + summary.missing_as
                + summary.missing_ip + summary.loops
            ) == summary.reached
            assert summary.reached <= summary.collected

    def test_fractions_sum_to_one(self, longterm):
        summaries = dataset_summary(longterm)
        for summary in summaries.values():
            total = (
                summary.complete_as_fraction
                + summary.missing_as_fraction
                + summary.missing_ip_fraction
                + summary.loop_fraction
            )
            assert total == pytest.approx(1.0)

    def test_collected_counts_match_grid(self, platform, longterm):
        summaries = dataset_summary(longterm)
        dual_pairs = len(platform.server_pairs(dual_stack_only=True))
        expected = dual_pairs * longterm.grid.rounds
        assert summaries[IPVersion.V4].collected == expected
        assert summaries[IPVersion.V6].collected == expected

    def test_shapes_in_paper_bands(self, longterm):
        """Coarse calibration bands on the session-scale dataset."""
        summaries = dataset_summary(longterm)
        v4 = summaries[IPVersion.V4]
        assert 0.55 <= v4.reached_fraction <= 0.9
        assert 0.45 <= v4.complete_as_fraction <= 0.9
        assert 0.05 <= v4.missing_ip_fraction <= 0.45
        assert v4.loop_fraction <= 0.12
