"""Tests for RTT inflation over cRTT (Figure 10b)."""

import pytest

from repro.core.inflation import MIN_CRTT_MS, inflation_ratio, pair_inflation
from repro.net.geo import crtt_ms
from repro.net.ip import IPVersion


class TestRatio:
    def test_basic(self):
        assert inflation_ratio(30.0, 10.0) == pytest.approx(3.0)

    def test_below_floor_returns_none(self):
        assert inflation_ratio(30.0, MIN_CRTT_MS / 2) is None

    def test_nan_rtt_returns_none(self):
        assert inflation_ratio(float("nan"), 10.0) is None


class TestStudy:
    def test_ratios_above_fiber_floor(self, longterm):
        """Physics: RTT can never beat light in fiber over a longer route,
        so every inflation ratio exceeds ~1.5 (the refraction factor)."""
        study = pair_inflation(longterm)
        assert study.pairs, "expected at least one measurable pair"
        for pair in study.pairs:
            assert pair.ratio > 1.4

    def test_crtt_matches_server_geography(self, longterm):
        study = pair_inflation(longterm)
        sample = study.pairs[0]
        src = longterm.servers[sample.src_server_id]
        dst = longterm.servers[sample.dst_server_id]
        assert sample.crtt_ms == pytest.approx(crtt_ms(src.city, dst.city))

    def test_median_in_paper_band(self, longterm):
        study = pair_inflation(longterm)
        median = study.median(IPVersion.V4)
        # Paper: 3.01; allow a generous band for the scaled scenario.
        assert 1.8 <= median <= 6.0

    def test_groupings_are_subsets(self, longterm):
        study = pair_inflation(longterm)
        total = len(study.ecdf(IPVersion.V4))
        us = len(study.ecdf(IPVersion.V4, us_only=True))
        trans = len(study.ecdf(IPVersion.V4, transcontinental_only=True))
        assert us <= total and trans <= total

    def test_us_pairs_flagged_correctly(self, longterm):
        study = pair_inflation(longterm)
        for pair in study.pairs:
            src = longterm.servers[pair.src_server_id]
            dst = longterm.servers[pair.dst_server_id]
            assert pair.us_to_us == (
                src.city.country == "US" and dst.city.country == "US"
            )
            assert pair.transcontinental == (src.city.continent != dst.city.continent)
