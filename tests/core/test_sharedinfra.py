"""Tests for the IPv4/IPv6 shared-infrastructure extension."""

import numpy as np
import pytest

from repro.core.sharedinfra import shared_infrastructure_study
from repro.datasets.longterm import LongTermDataset
from repro.datasets.timeline import TraceTimeline
from repro.measurement.scheduler import CampaignGrid
from repro.measurement.traceroute import TraceOutcome
from repro.net.ip import IPVersion

COMPLETE = int(TraceOutcome.COMPLETE)


def _timeline(version, path_ids, rtts, paths):
    count = len(path_ids)
    return TraceTimeline(
        src_server_id=0, dst_server_id=1, version=version,
        times_hours=3.0 * np.arange(count),
        rtt_ms=np.asarray(rtts, dtype=np.float32),
        outcome=np.full(count, COMPLETE, dtype=np.uint8),
        path_id=np.asarray(path_ids, dtype=np.int32),
        paths=paths,
        true_candidate=np.zeros(count, dtype=np.int16),
    )


def _dataset(v4, v6):
    grid = CampaignGrid(0.0, 3.0, len(v4.times_hours))
    dataset = LongTermDataset(grid=grid)
    dataset.timelines[(0, 1, IPVersion.V4)] = v4
    dataset.timelines[(0, 1, IPVersion.V6)] = v6
    return dataset


class TestSignals:
    def test_shared_pair_scores_high(self):
        rng = np.random.default_rng(1)
        count = 200
        shift = np.where(np.arange(count) < 100, 0.0, 30.0)
        base = 50.0 + shift
        ids = [0] * 100 + [1] * 100
        paths = [(1, 2, 3), (1, 4, 3)]
        v4 = _timeline(IPVersion.V4, ids, base + rng.gamma(2, 1, count), paths)
        v6 = _timeline(IPVersion.V6, ids, base + rng.gamma(2, 1, count), paths)
        study = shared_infrastructure_study(_dataset(v4, v6))
        signal = study.signals[0]
        assert signal.dominant_paths_match
        assert signal.synchronized_change_fraction == pytest.approx(1.0)
        assert signal.rtt_correlation > 0.8

    def test_divergent_pair_scores_low(self):
        rng = np.random.default_rng(2)
        count = 200
        paths_v4 = [(1, 2, 3)]
        paths_v6 = [(1, 9, 3)]
        v4 = _timeline(
            IPVersion.V4, [0] * count,
            50.0 + np.where(np.arange(count) < 100, 0, 30) + rng.gamma(2, 1, count),
            paths_v4,
        )
        v6 = _timeline(
            IPVersion.V6, [0] * count, 80.0 + rng.gamma(2, 1, count), paths_v6
        )
        study = shared_infrastructure_study(_dataset(v4, v6))
        signal = study.signals[0]
        assert not signal.dominant_paths_match
        assert np.isnan(signal.synchronized_change_fraction)  # no v6 changes
        assert abs(signal.rtt_correlation) < 0.3

    def test_empty_dataset(self):
        study = shared_infrastructure_study(
            LongTermDataset(grid=CampaignGrid(0.0, 3.0, 1))
        )
        assert study.pairs == 0
        assert np.isnan(study.dominant_match_fraction)


class TestSimulatedStudy:
    def test_shared_infra_signature_on_session_data(self, longterm):
        study = shared_infrastructure_study(longterm)
        assert study.pairs > 0
        # Most dual-stack pairs share the dominant AS path (shared edges).
        assert study.dominant_match_fraction > 0.4
        # Pairs on the same dominant path co-move more than divergent pairs
        # (NaNs mean no comparable group -- skip the ordering check then).
        same = study.median_correlation(matching_paths=True)
        different = study.median_correlation(matching_paths=False)
        if np.isfinite(same) and np.isfinite(different):
            assert same >= different - 0.1
