"""Tests for sub-optimal path prevalence (Figure 6)."""

import pytest

from repro.core.suboptimal import suboptimal_prevalence, timeline_suboptimal_prevalence
from tests.core.test_rttstats import timeline_with_rtts


class TestPerTimeline:
    def test_thresholds_partition_paths(self):
        # Best path 0 (10ms); path 1 +25ms, path 2 +120ms.
        timeline = timeline_with_rtts(
            [0] * 4 + [1] * 4 + [2] * 4,
            [10] * 4 + [35] * 4 + [130] * 4,
        )
        result = timeline_suboptimal_prevalence(timeline, (20.0, 50.0, 100.0))
        assert result[20.0] == pytest.approx(8 / 12)  # paths 1 and 2
        assert result[50.0] == pytest.approx(4 / 12)  # only path 2
        assert result[100.0] == pytest.approx(4 / 12)

    def test_small_buckets_not_counted(self):
        # A path observed fewer than three times has no trustworthy
        # percentile and is skipped by the bucket statistics.
        timeline = timeline_with_rtts(
            [0] * 4 + [1] * 2, [10] * 4 + [130] * 2
        )
        result = timeline_suboptimal_prevalence(timeline, (100.0,))
        assert result[100.0] == 0.0

    def test_single_path_scores_zero(self):
        timeline = timeline_with_rtts([0] * 5, [10] * 5)
        result = timeline_suboptimal_prevalence(timeline)
        assert all(value == 0.0 for value in result.values())

    def test_prevalence_below_one(self):
        timeline = timeline_with_rtts([0] * 2 + [1] * 8, [10] * 2 + [200] * 8)
        result = timeline_suboptimal_prevalence(timeline, (20.0,))
        assert 0.0 <= result[20.0] <= 1.0


class TestPopulation:
    def test_ecdf_per_threshold(self):
        timelines = [
            timeline_with_rtts([0] * 5 + [1] * 5, [10] * 5 + [100] * 5),
            timeline_with_rtts([0] * 10, [10] * 10),
        ]
        ecdfs = suboptimal_prevalence(timelines, (50.0,))
        ecdf = ecdfs[50.0]
        assert len(ecdf) == 2
        # One timeline has half its lifetime on a >=50ms-worse path; the
        # other has none.
        assert ecdf.tail_fraction(0.4) == pytest.approx(0.5)
        assert ecdf.at(0.0) == pytest.approx(0.5)
