"""Tests for AS-path utilities."""

from repro.core.aspath import UNKNOWN_ASN, has_as_loop, has_unknown, path_to_string


class TestLoops:
    def test_no_loop(self):
        assert not has_as_loop((1, 2, 3))

    def test_loop_detected(self):
        assert has_as_loop((1, 2, 1, 3))

    def test_unknown_tokens_not_loops(self):
        assert not has_as_loop((1, UNKNOWN_ASN, 2, UNKNOWN_ASN, 3))

    def test_empty_path(self):
        assert not has_as_loop(())


class TestUnknown:
    def test_detection(self):
        assert has_unknown((1, UNKNOWN_ASN, 2))
        assert not has_unknown((1, 2))


class TestRendering:
    def test_path_to_string(self):
        assert path_to_string((100, UNKNOWN_ASN, 200)) == "AS100 > ? > AS200"

    def test_empty(self):
        assert path_to_string(()) == ""
