"""Tests for congestion-overhead estimation (Figure 9)."""

import numpy as np
import pytest

from repro.core.overhead import congestion_overhead, daily_profile


def _series(days=10.0, period=0.5, amplitude=25.0, base=50.0, noise=0.5, seed=0):
    rng = np.random.default_rng(seed)
    times = np.arange(0.0, days * 24.0, period)
    hod = times % 24.0
    bump = amplitude * np.where(np.abs(hod - 20.0) < 3.0,
                                np.cos(np.pi * (hod - 20.0) / 6.0) ** 2, 0.0)
    return times, base + bump + rng.gamma(2.0, noise, times.size)


class TestDailyProfile:
    def test_shape(self):
        times, rtts = _series()
        profile = daily_profile(times, rtts)
        assert profile.shape == (24,)
        assert np.isfinite(profile).all()

    def test_peak_bin_near_busy_hour(self):
        times, rtts = _series()
        profile = daily_profile(times, rtts)
        assert int(np.argmax(profile)) in (19, 20, 21)

    def test_empty_bins_nan(self):
        times = np.array([0.1, 0.2])  # only the first hour sampled
        profile = daily_profile(times, np.array([5.0, 6.0]))
        assert np.isfinite(profile[0])
        assert np.isnan(profile[5:]).all()

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            daily_profile(np.array([0.0]), np.array([1.0]), bins=1)


class TestOverhead:
    def test_recovers_amplitude(self):
        times, rtts = _series(amplitude=25.0)
        overhead = congestion_overhead(times, rtts)
        assert overhead == pytest.approx(25.0, abs=4.0)

    def test_flat_series_near_zero(self):
        times, rtts = _series(amplitude=0.0)
        overhead = congestion_overhead(times, rtts)
        assert overhead < 3.0

    def test_spikes_do_not_inflate(self):
        """Medians keep isolated spikes out of the estimate."""
        times, rtts = _series(amplitude=0.0)
        spiked = rtts.copy()
        spiked[::97] += 500.0
        overhead = congestion_overhead(times, spiked)
        assert overhead < 10.0

    def test_sparse_profile_returns_none(self):
        times = np.arange(0.0, 4.0, 0.5)  # only a few hours of day covered
        assert congestion_overhead(times, np.full(times.size, 5.0)) is None

    def test_nan_samples_ignored(self):
        times, rtts = _series()
        rtts[::5] = np.nan
        overhead = congestion_overhead(times, rtts)
        assert overhead == pytest.approx(25.0, abs=5.0)
