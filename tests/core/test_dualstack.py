"""Tests for the IPv4-vs-IPv6 paired comparison (Figure 10a)."""

import numpy as np
import pytest

from repro.core.dualstack import paired_rtt_differences
from repro.datasets.longterm import LongTermDataset
from repro.datasets.timeline import TraceTimeline
from repro.measurement.scheduler import CampaignGrid
from repro.measurement.traceroute import TraceOutcome
from repro.net.ip import IPVersion

COMPLETE = int(TraceOutcome.COMPLETE)
INCOMPLETE = int(TraceOutcome.INCOMPLETE)


def _timeline(version, rtts, outcomes=None, path_ids=None, paths=None):
    count = len(rtts)
    return TraceTimeline(
        src_server_id=0,
        dst_server_id=1,
        version=version,
        times_hours=3.0 * np.arange(count),
        rtt_ms=np.asarray(rtts, dtype=np.float32),
        outcome=np.asarray(outcomes or [COMPLETE] * count, dtype=np.uint8),
        path_id=np.asarray(path_ids or [0] * count, dtype=np.int32),
        paths=paths or [(1, 2)],
        true_candidate=np.zeros(count, dtype=np.int16),
    )


def _dataset(v4, v6):
    grid = CampaignGrid(0.0, 3.0, len(v4.times_hours))
    dataset = LongTermDataset(grid=grid)
    dataset.timelines[(0, 1, IPVersion.V4)] = v4
    dataset.timelines[(0, 1, IPVersion.V6)] = v6
    return dataset


class TestPairing:
    def test_differences_per_round(self):
        v4 = _timeline(IPVersion.V4, [50.0, 60.0, 70.0])
        v6 = _timeline(IPVersion.V6, [40.0, 60.0, 90.0])
        comparison = paired_rtt_differences(_dataset(v4, v6))
        assert comparison.paired_samples == 3
        assert sorted(comparison.all_diffs.values.tolist()) == [-20.0, 0.0, 10.0]
        assert comparison.per_pair_median[(0, 1)] == pytest.approx(0.0)

    def test_rounds_missing_either_protocol_skipped(self):
        v4 = _timeline(IPVersion.V4, [50.0, 60.0], outcomes=[COMPLETE, INCOMPLETE])
        v6 = _timeline(IPVersion.V6, [40.0, 55.0])
        comparison = paired_rtt_differences(_dataset(v4, v6))
        assert comparison.paired_samples == 1

    def test_same_path_subset(self):
        paths_v4 = [(1, 2), (1, 3)]
        paths_v6 = [(1, 2), (1, 4)]
        v4 = _timeline(IPVersion.V4, [50.0, 60.0], path_ids=[0, 1], paths=paths_v4)
        v6 = _timeline(IPVersion.V6, [40.0, 55.0], path_ids=[0, 1], paths=paths_v6)
        comparison = paired_rtt_differences(_dataset(v4, v6))
        assert comparison.paired_samples == 2
        assert comparison.same_path_samples == 1
        assert comparison.same_path_diffs.values.tolist() == [10.0]

    def test_band_and_tail_statistics(self):
        v4_values = [50.0] * 8 + [200.0] * 2
        v6_values = [50.0] * 8 + [100.0] * 2
        v4 = _timeline(IPVersion.V4, v4_values)
        v6 = _timeline(IPVersion.V6, v6_values)
        comparison = paired_rtt_differences(_dataset(v4, v6))
        assert comparison.within_band_fraction(10.0) == pytest.approx(0.8)
        # Median per-pair difference is 0: neither protocol "saves" 50 ms.
        assert comparison.v6_saves_fraction(50.0) == 0.0
        assert comparison.v4_saves_fraction(50.0) == 0.0

    def test_v6_saves_counted_per_pair(self):
        v4 = _timeline(IPVersion.V4, [150.0] * 4)
        v6 = _timeline(IPVersion.V6, [50.0] * 4)
        comparison = paired_rtt_differences(_dataset(v4, v6))
        assert comparison.v6_saves_fraction(50.0) == 1.0
        assert comparison.v4_saves_fraction(50.0) == 0.0

    def test_empty_dataset(self):
        grid = CampaignGrid(0.0, 3.0, 1)
        comparison = paired_rtt_differences(LongTermDataset(grid=grid))
        assert comparison.paired_samples == 0
        assert np.isnan(comparison.within_band_fraction())
