"""Tests for the ECDF helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ecdf import ECDF

_samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


class TestBasics:
    def test_at_known_points(self):
        ecdf = ECDF([1.0, 2.0, 3.0, 4.0])
        assert ecdf.at(0.5) == 0.0
        assert ecdf.at(1.0) == 0.25
        assert ecdf.at(2.5) == 0.5
        assert ecdf.at(4.0) == 1.0

    def test_tail_fraction(self):
        ecdf = ECDF([1.0, 2.0, 3.0, 4.0])
        assert ecdf.tail_fraction(3.0) == 0.5
        assert ecdf.tail_fraction(5.0) == 0.0
        assert ecdf.tail_fraction(-1.0) == 1.0

    def test_quantile(self):
        ecdf = ECDF(range(101))
        assert ecdf.quantile(0.5) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_nan_dropped(self):
        ecdf = ECDF([1.0, float("nan"), 3.0])
        assert len(ecdf) == 2

    def test_empty(self):
        ecdf = ECDF([])
        assert len(ecdf) == 0
        assert np.isnan(ecdf.at(1.0))
        assert np.isnan(ecdf.quantile(0.5))
        assert np.isnan(ecdf.tail_fraction(1.0))
        assert ecdf.points() == []

    def test_points_downsampled(self):
        ecdf = ECDF(range(1000))
        points = ecdf.points(max_points=50)
        assert len(points) <= 50
        assert points[-1] == (999.0, 1.0)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(_samples, st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_at_plus_strict_tail_is_one(self, samples, x):
        ecdf = ECDF(samples)
        below_or_equal = ecdf.at(x)
        strictly_above = 1.0 - below_or_equal
        count_above = sum(1 for value in samples if value > x)
        assert strictly_above == pytest.approx(count_above / len(samples))

    @settings(max_examples=100, deadline=None)
    @given(_samples)
    def test_monotone(self, samples):
        ecdf = ECDF(samples)
        grid = sorted(set(samples))
        values = [ecdf.at(x) for x in grid]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    @settings(max_examples=100, deadline=None)
    @given(_samples)
    def test_extremes(self, samples):
        ecdf = ECDF(samples)
        assert ecdf.at(max(samples)) == pytest.approx(1.0)
        assert ecdf.tail_fraction(min(samples)) == pytest.approx(1.0)
