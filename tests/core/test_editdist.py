"""Tests for edit distance over AS paths."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.editdist import edit_distance, paths_differ

_paths = st.lists(st.integers(min_value=0, max_value=9), max_size=12)


class TestKnownCases:
    def test_identical_paths_zero(self):
        assert edit_distance((1, 2, 3), (1, 2, 3)) == 0

    def test_paper_example(self):
        # Section 4.1: removing ASNc from a->b->c->d yields distance one.
        p1 = ("a", "b", "c", "d")
        p2 = ("a", "b", "d")
        assert edit_distance(p1, p2) == 1

    def test_substitution(self):
        assert edit_distance((1, 2, 3), (1, 9, 3)) == 1

    def test_empty_vs_path(self):
        assert edit_distance((), (1, 2, 3)) == 3
        assert edit_distance((1, 2), ()) == 2

    def test_disjoint_paths(self):
        assert edit_distance((1, 2), (3, 4)) == 2

    def test_prefix_suffix_fast_path(self):
        assert edit_distance((1, 2, 3, 4, 5), (1, 2, 9, 4, 5)) == 1
        assert edit_distance((1, 2, 3), (1, 2, 3, 4)) == 1

    def test_classic_levenshtein(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("flaw", "lawn") == 2


class TestProperties:
    @settings(max_examples=150, deadline=None)
    @given(_paths, _paths)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @settings(max_examples=150, deadline=None)
    @given(_paths)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @settings(max_examples=150, deadline=None)
    @given(_paths, _paths)
    def test_zero_iff_equal(self, a, b):
        assert (edit_distance(a, b) == 0) == (a == b)
        assert paths_differ(a, b) == (tuple(a) != tuple(b))

    @settings(max_examples=100, deadline=None)
    @given(_paths, _paths, _paths)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @settings(max_examples=150, deadline=None)
    @given(_paths, _paths)
    def test_bounds(self, a, b):
        distance = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @settings(max_examples=100, deadline=None)
    @given(_paths, st.integers(min_value=0, max_value=9))
    def test_single_append_costs_one(self, a, token):
        assert edit_distance(a, list(a) + [token]) == 1
