"""Tests for the decile heatmaps of Figures 4/5."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heatmap import build_heatmap, collect_lifetime_increase_points
from tests.core.test_rttstats import timeline_with_rtts

_points = st.lists(
    st.tuples(
        st.floats(min_value=3.0, max_value=10_000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    ),
    min_size=10,
    max_size=300,
)


class TestBuildHeatmap:
    def test_cells_sum_to_100(self):
        rng = np.random.default_rng(1)
        points = list(zip(rng.uniform(3, 1000, 500), rng.uniform(0, 100, 500)))
        heatmap = build_heatmap(points)
        assert heatmap.cells.sum() == pytest.approx(100.0)

    def test_decile_rows_balanced(self):
        rng = np.random.default_rng(2)
        points = list(zip(rng.uniform(3, 1000, 1000), rng.uniform(0, 100, 1000)))
        heatmap = build_heatmap(points)
        # With continuous data every decile row holds ~10%.
        assert np.allclose(heatmap.row_sums(), 10.0, atol=1.5)
        assert np.allclose(heatmap.column_sums(), 10.0, atol=1.5)

    def test_duplicate_quantiles_collapse_bins(self):
        # Half the lifetimes identical: the first deciles coincide, as in
        # the paper's Figure 4 where [0, 3h) is absent.
        points = [(3.0, float(i)) for i in range(50)] + [
            (float(10 + i), float(i)) for i in range(50)
        ]
        heatmap = build_heatmap(points)
        assert heatmap.cells.shape[1] < 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_heatmap([])

    def test_tail_percent(self):
        rng = np.random.default_rng(3)
        points = list(zip(rng.uniform(3, 1000, 1000), rng.uniform(0, 100, 1000)))
        heatmap = build_heatmap(points)
        rows = heatmap.cells.shape[0]
        assert heatmap.tail_increase_percent(rows - 1) == pytest.approx(
            heatmap.row_sums()[-1]
        )

    @settings(max_examples=40, deadline=None)
    @given(_points)
    def test_all_points_binned(self, points):
        heatmap = build_heatmap(points)
        assert heatmap.cells.sum() == pytest.approx(100.0, abs=1e-6)
        assert (heatmap.cells >= 0).all()


class TestCollectPoints:
    def test_one_point_per_suboptimal_path(self):
        timeline = timeline_with_rtts(
            [0] * 5 + [1] * 5 + [2] * 5,
            [10] * 5 + [30] * 5 + [50] * 5,
        )
        points = collect_lifetime_increase_points([timeline], q=10.0)
        assert len(points) == 2  # paths 1 and 2; best path contributes none
        lifetimes = {lifetime for lifetime, _ in points}
        assert lifetimes == {15.0}  # five 3-hour observations each

    def test_single_path_timeline_contributes_nothing(self):
        timeline = timeline_with_rtts([0] * 5, [10] * 5)
        assert collect_lifetime_increase_points([timeline], q=10.0) == []

    def test_negative_increases_clamped(self):
        # Cannot happen with q == best-q, but guard the invariant anyway.
        timeline = timeline_with_rtts([0] * 5 + [1] * 5, [10] * 5 + [30] * 5)
        points = collect_lifetime_increase_points([timeline], q=10.0)
        assert all(increase >= 0.0 for _, increase in points)
