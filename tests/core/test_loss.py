"""Tests for the packet-loss extension."""

import numpy as np
import pytest

from repro.core.loss import (
    assess_loss,
    hourly_loss_profile,
    loss_population_summary,
    loss_rtt_correlation,
)
from repro.datasets.timeline import PingTimeline
from repro.measurement.loss import LossModel
from repro.net.ip import IPVersion


def _timeline(rtts, period=0.25):
    return PingTimeline(
        src_server_id=0, dst_server_id=1, version=IPVersion.V4,
        times_hours=period * np.arange(len(rtts)),
        rtt_ms=np.asarray(rtts, dtype=np.float32),
    )


def _congested_lossy_timeline(days=7, seed=0, busy_loss=0.2):
    """Diurnal RTT bump at hours 18-23 with correlated loss."""
    rng = np.random.default_rng(seed)
    times = np.arange(0.0, days * 24.0, 0.25)
    hod = times % 24.0
    busy = (hod >= 18.0) & (hod < 24.0)
    rtt = 50.0 + np.where(busy, 25.0, 0.0) + rng.gamma(2, 0.5, times.size)
    lost = rng.random(times.size) < np.where(busy, busy_loss, 0.003)
    rtt[lost] = np.nan
    return PingTimeline(0, 1, IPVersion.V4, times, rtt.astype(np.float32))


class TestLossModel:
    def test_probabilities_scale_with_congestion(self):
        model = LossModel()
        lift = np.array([0.0, 25.0, 1000.0])
        probabilities = model.probabilities(lift)
        assert probabilities[0] == pytest.approx(model.base_probability)
        assert probabilities[1] > probabilities[0]
        assert probabilities[2] == model.max_probability  # clipped

    def test_sampling_rate(self):
        model = LossModel(base_probability=0.1, per_ms_of_congestion=0.0)
        rng = np.random.default_rng(1)
        losses = model.sample_losses(rng, np.zeros(20_000))
        assert 0.08 < losses.mean() < 0.12

    def test_validation(self):
        with pytest.raises(ValueError):
            LossModel(base_probability=1.5)
        with pytest.raises(ValueError):
            LossModel(per_ms_of_congestion=-0.1)


class TestProfiles:
    def test_hourly_loss_profile_shape(self):
        timeline = _congested_lossy_timeline()
        profile = hourly_loss_profile(timeline)
        assert profile.shape == (24,)
        # Busy-evening bins lose far more than early-morning bins.
        assert np.nanmean(profile[18:24]) > 5 * max(np.nanmean(profile[2:8]), 1e-4)

    def test_correlation_positive_for_coupled_loss(self):
        timeline = _congested_lossy_timeline()
        assert loss_rtt_correlation(timeline) > 0.5

    def test_correlation_near_zero_for_uniform_loss(self):
        rng = np.random.default_rng(2)
        times = np.arange(0.0, 7 * 24.0, 0.25)
        rtt = 50.0 + rng.gamma(2, 0.5, times.size)
        rtt[rng.random(times.size) < 0.02] = np.nan
        correlation = loss_rtt_correlation(_timeline(rtt.tolist()))
        assert abs(correlation) < 0.5


class TestVerdicts:
    def test_congested_pair_flagged(self):
        verdict = assess_loss(_congested_lossy_timeline())
        assert verdict.diurnal_loss
        assert verdict.busy_hour_loss > verdict.quiet_hour_loss

    def test_quiet_pair_not_flagged(self):
        rng = np.random.default_rng(3)
        times = np.arange(0.0, 7 * 24.0, 0.25)
        rtt = 50.0 + rng.gamma(2, 0.5, times.size)
        rtt[rng.random(times.size) < 0.004] = np.nan
        verdict = assess_loss(_timeline(rtt.tolist()))
        assert not verdict.diurnal_loss

    def test_population_summary(self):
        timelines = [_congested_lossy_timeline(seed=s) for s in range(3)]
        rng = np.random.default_rng(4)
        times = np.arange(0.0, 7 * 24.0, 0.25)
        quiet_rtt = 50.0 + rng.gamma(2, 0.5, times.size)
        timelines.append(_timeline(quiet_rtt.tolist()))
        summary = loss_population_summary(timelines)
        assert summary.pairs == 4
        assert summary.diurnal_loss_pairs == 3
        assert summary.median_correlation_diurnal > 0.5

    def test_short_series_excluded(self):
        summary = loss_population_summary([_timeline([50.0] * 10)])
        assert summary.pairs == 0


class TestSimulatedCoupling:
    def test_dataset_loss_couples_to_congestion(self, platform, ping_dataset):
        """Ping losses in the built dataset concentrate on congested pairs."""
        from repro.core.congestion import CongestionDetector

        detector = CongestionDetector()
        congested_rates, quiet_rates = [], []
        for timeline in ping_dataset.by_version(IPVersion.V4):
            rate = float(np.mean(np.isnan(timeline.rtt_ms)))
            if detector.assess(timeline).congested:
                congested_rates.append(rate)
            else:
                quiet_rates.append(rate)
        if not congested_rates:
            pytest.skip("session seed produced no congested pairs")
        assert np.median(congested_rates) > np.median(quiet_rates)
