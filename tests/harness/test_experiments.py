"""Tests for the per-figure experiment drivers on the session platform."""

import numpy as np
import pytest

from repro.harness.experiments import (
    experiment_congestion_norm,
    experiment_fig1,
    experiment_fig2,
    experiment_fig3,
    experiment_fig4,
    experiment_fig5,
    experiment_fig6,
    experiment_fig9,
    experiment_fig10a,
    experiment_fig10b,
    experiment_link_classification,
    experiment_localization,
    experiment_table1,
)


class TestExperimentShape:
    """Every driver returns metrics and a renderable report."""

    @pytest.fixture(scope="class")
    def results(self, platform, longterm, ping_dataset, trace_dataset):
        return [
            experiment_table1(longterm),
            experiment_fig1(platform, longterm),
            experiment_fig2(longterm),
            experiment_fig3(longterm),
            experiment_fig4(longterm),
            experiment_fig5(longterm),
            experiment_fig6(longterm),
            experiment_congestion_norm(ping_dataset),
            experiment_localization(trace_dataset, platform),
            experiment_link_classification(trace_dataset, platform),
            experiment_fig9(trace_dataset, platform),
            experiment_fig10a(longterm),
            experiment_fig10b(longterm),
        ]

    def test_all_render(self, results):
        for result in results:
            text = result.render()
            assert result.experiment_id in text
            assert "paper" in text and "measured" in text

    def test_metric_lookup(self, results):
        table1 = results[0]
        metric = table1.metric("complete AS-level v4")
        assert metric.paper == pytest.approx(70.30)
        with pytest.raises(KeyError):
            table1.metric("nonexistent")

    def test_unique_ids(self, results):
        ids = [result.experiment_id for result in results]
        assert len(ids) == len(set(ids))


class TestSubstance:
    def test_table1_fractions_finite(self, longterm):
        result = experiment_table1(longterm)
        for metric in result.metrics:
            assert np.isfinite(metric.measured)

    def test_fig2_counts_positive(self, longterm):
        result = experiment_fig2(longterm)
        assert result.metric("paths/timeline p80 v4").measured >= 1

    def test_fig3_dominance(self, longterm):
        result = experiment_fig3(longterm)
        dominant = result.metric(
            "timelines with dominant path (prev>=50%) v4"
        ).measured
        assert 50.0 <= dominant <= 100.0

    def test_fig4_has_heatmap(self, longterm):
        result = experiment_fig4(longterm)
        assert "RTT increase over best path" in result.report

    def test_fig10a_band_sensible(self, longterm):
        result = experiment_fig10a(longterm)
        band = result.metric("traceroutes with |RTTv4-RTTv6| <= 10ms").measured
        assert 10.0 <= band <= 100.0

    def test_fig10b_inflation_physical(self, longterm):
        result = experiment_fig10b(longterm)
        assert result.metric("median inflation v4").measured > 1.4

    def test_congestion_not_the_norm(self, ping_dataset):
        result = experiment_congestion_norm(ping_dataset)
        congested = result.metric("pairs with strong diurnal + spread v4").measured
        assert congested < 30.0  # a small minority, as the paper concludes
