"""Tests for text-mode curve rendering."""

import numpy as np

from repro.core.ecdf import ECDF
from repro.harness.curves import plot_ecdfs, plot_timeline
from tests.core.test_rttstats import timeline_with_rtts


class TestECDFPlot:
    def test_renders_grid_and_legend(self):
        text = plot_ecdfs(
            [("v4", ECDF(range(100))), ("v6", ECDF(range(50, 150)))],
            x_label="RTT (ms)",
        )
        lines = text.splitlines()
        assert any("#" in line for line in lines)
        assert any("*" in line for line in lines)
        assert "v4" in text and "v6" in text
        assert "RTT (ms)" in text

    def test_log_scale(self):
        text = plot_ecdfs(
            [("paths", ECDF([1, 1, 2, 3, 50, 100]))], log_x=True, x_label="paths"
        )
        assert "(log scale)" in text

    def test_empty_curves(self):
        assert plot_ecdfs([("empty", ECDF([]))]) == "(no data)"

    def test_monotone_rendering(self):
        """Marks never go down as x increases (an ECDF cannot)."""
        text = plot_ecdfs([("x", ECDF(np.linspace(0, 10, 200)))], height=10, width=40)
        rows = [line[6:] for line in text.splitlines() if "|" in line[:6]]
        last_row_of_column = {}
        for row_index, row in enumerate(rows):
            for column, char in enumerate(row):
                if char == "#":
                    last_row_of_column[column] = row_index
        columns = sorted(last_row_of_column)
        values = [last_row_of_column[c] for c in columns]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestTimelinePlot:
    def test_marks_path_changes(self):
        timeline = timeline_with_rtts(
            [0] * 50 + [1] * 50, [50.0] * 50 + [120.0] * 50
        )
        text = plot_timeline(timeline, width=40, title="demo pair")
        assert "demo pair" in text
        assert "|" in text  # the change marker
        assert "AS-path change" in text

    def test_no_usable_samples(self):
        timeline = timeline_with_rtts([0], [np.nan])
        assert "no usable samples" in plot_timeline(timeline)

    def test_flat_series(self):
        timeline = timeline_with_rtts([0] * 30, [10.0] * 30)
        text = plot_timeline(timeline)
        assert "." in text
