"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--scenario", "bogus"])

    def test_trace_arguments(self):
        args = build_parser().parse_args(
            ["trace", "--src", "0", "--dst", "2", "--ipv6"]
        )
        assert args.src == 0 and args.dst == 2 and args.ipv6

    def test_observability_arguments(self):
        args = build_parser().parse_args([
            "reproduce", "--log-level", "debug", "--log-json",
            "--trace-out", "t.json", "--run-report", "r.json",
        ])
        assert args.log_level == "debug" and args.log_json
        assert args.trace_out == "t.json" and args.run_report == "r.json"

    def test_logging_flags_on_every_command(self):
        for command in (["info"], ["trace", "--src", "0", "--dst", "1"]):
            args = build_parser().parse_args(command + ["--log-level", "info"])
            assert args.log_level == "info"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--scenario", "small"]) == 0
        out = capsys.readouterr().out
        assert "ASes:" in out
        assert "measurement servers" in out

    def test_trace_happy_path(self, capsys):
        from repro.harness.scenarios import scenario_platform

        platform = scenario_platform("small", 0)
        servers = platform.measurement_servers()
        src, dst = servers[0].server_id, servers[1].server_id
        assert main(["trace", "--src", str(src), "--dst", str(dst)]) == 0
        out = capsys.readouterr().out
        assert "traceroute to" in out

    def test_trace_bad_server_id(self, capsys):
        assert main(["trace", "--src", "1", "--dst", "99999"]) == 2
        assert "server ids" in capsys.readouterr().err

    def test_reproduce_unknown_experiment(self, capsys):
        assert main(["reproduce", "--experiments", "nope"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_reproduce_single_experiment(self, capsys):
        assert main(
            ["reproduce", "--scenario", "small", "--experiments", "table1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Traceroute completeness summary" in out

    def test_reproduce_timings_table(self, capsys):
        assert main(
            ["reproduce", "--scenario", "small", "--experiments", "table1",
             "--timings"]
        ) == 0
        out = capsys.readouterr().out
        assert "== stage timings ==" in out
        assert "experiment:table1" in out
        assert "total" in out


class TestStreamCommand:
    def test_stream_flags_parse(self):
        args = build_parser().parse_args([
            "reproduce", "--stream", "--checkpoint-dir", "ckpt", "--resume",
        ])
        assert args.stream and args.resume
        assert args.checkpoint_dir == "ckpt"

    def test_stream_rejects_batch_experiment(self, capsys):
        assert main(
            ["reproduce", "--stream", "--experiments", "table1"]
        ) == 2
        assert "not served by --stream" in capsys.readouterr().err

    def test_checkpoint_flags_require_stream(self, capsys):
        assert main(["reproduce", "--resume"]) == 2
        assert "require --stream" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["reproduce", "--stream", "--resume"]) == 2
        assert "requires --checkpoint-dir" in capsys.readouterr().err

    def test_stream_reproduce_with_manifest(self, capsys, tmp_path):
        import json

        report = tmp_path / "run.json"
        assert main([
            "reproduce", "--scenario", "small", "--stream",
            "--experiments", "fig3",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--run-report", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "Popular-path prevalence" in out
        manifest = json.loads(report.read_text())
        stream = manifest["extra"]["stream"]
        assert stream["enabled"] is True
        assert stream["experiments"] == ["fig3"]
        assert stream["checkpoint_fingerprint"]
        assert stream["phases"] == {
            "longterm": True, "ping": False, "segment": False,
        }
        assert manifest["metrics"]["counters"]["stream.units"] > 0


class TestLivePlane:
    def test_live_flags_parse(self):
        args = build_parser().parse_args(["reproduce"])
        assert args.serve_metrics is None
        assert args.live_out is None and args.live_interval == 1.0

        args = build_parser().parse_args(["reproduce", "--serve-metrics"])
        assert args.serve_metrics == 9309  # bare flag uses the default port

        args = build_parser().parse_args([
            "reproduce", "--serve-metrics", "0",
            "--live-out", "live.jsonl", "--live-interval", "0.25",
        ])
        assert args.serve_metrics == 0
        assert args.live_out == "live.jsonl" and args.live_interval == 0.25

    def test_live_out_records_stream_run(self, capsys, tmp_path):
        import json

        live = tmp_path / "live.jsonl"
        assert main([
            "reproduce", "--scenario", "small", "--stream", "--jobs", "2",
            "--experiments", "fig3", "--live-out", str(live),
            "--live-interval", "0.05",
        ]) == 0
        capsys.readouterr()
        samples = [json.loads(line) for line in live.read_text().splitlines()]
        assert samples, "no flight-recorder samples written"
        assert [s["seq"] for s in samples] == list(range(len(samples)))
        last = samples[-1]
        assert last["final"] is True and last["reason"] == "complete"
        assert last["status"]["run"]["mode"] == "stream"
        assert last["status"]["run"]["jobs"] == 2
        assert last["counters"]["stream.units"] > 0
        assert last["counters"]["stream.shard_units{shard=0}"] > 0
        assert last["process"]["rss_mb"] > 0

    def test_serve_metrics_announces_endpoint(self, capsys):
        assert main([
            "reproduce", "--scenario", "small", "--experiments", "table1",
            "--serve-metrics", "0",
        ]) == 0
        err = capsys.readouterr().err
        assert "live telemetry at http://127.0.0.1:" in err
        assert "/metrics /status /health" in err

    def test_reports_byte_identical_with_live_plane(self, capsys, tmp_path):
        assert main([
            "reproduce", "--scenario", "small", "--experiments", "table1",
        ]) == 0
        plain = capsys.readouterr().out

        assert main([
            "reproduce", "--scenario", "small", "--experiments", "table1",
            "--live-out", str(tmp_path / "live.jsonl"),
            "--live-interval", "0.05", "--serve-metrics", "0",
        ]) == 0
        observed = capsys.readouterr().out
        assert observed == plain

    def test_stream_reports_byte_identical_with_live_plane(self, capsys, tmp_path):
        argv = [
            "reproduce", "--scenario", "small", "--stream",
            "--experiments", "fig3",
        ]
        assert main(argv) == 0
        plain = capsys.readouterr().out

        assert main(argv + [
            "--live-out", str(tmp_path / "live.jsonl"), "--live-interval", "0.05",
        ]) == 0
        observed = capsys.readouterr().out
        assert observed == plain
