"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--scenario", "bogus"])

    def test_trace_arguments(self):
        args = build_parser().parse_args(
            ["trace", "--src", "0", "--dst", "2", "--ipv6"]
        )
        assert args.src == 0 and args.dst == 2 and args.ipv6


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--scenario", "small"]) == 0
        out = capsys.readouterr().out
        assert "ASes:" in out
        assert "measurement servers" in out

    def test_trace_happy_path(self, capsys):
        from repro.harness.scenarios import scenario_platform

        platform = scenario_platform("small", 0)
        servers = platform.measurement_servers()
        src, dst = servers[0].server_id, servers[1].server_id
        assert main(["trace", "--src", str(src), "--dst", str(dst)]) == 0
        out = capsys.readouterr().out
        assert "traceroute to" in out

    def test_trace_bad_server_id(self, capsys):
        assert main(["trace", "--src", "1", "--dst", "99999"]) == 2
        assert "server ids" in capsys.readouterr().err

    def test_reproduce_unknown_experiment(self, capsys):
        assert main(["reproduce", "--experiments", "nope"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_reproduce_single_experiment(self, capsys):
        assert main(
            ["reproduce", "--scenario", "small", "--experiments", "table1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Traceroute completeness summary" in out
