"""Tests for report rendering."""

import numpy as np

from repro.core.ecdf import ECDF
from repro.core.heatmap import build_heatmap
from repro.harness.report import format_duration, format_ms, render_ecdf, render_heatmap, render_table


class TestFormatters:
    def test_duration_units(self):
        assert format_duration(3.0) == "3.0h"
        assert format_duration(48.0) == "2.0D"
        assert format_duration(24.0 * 60) == "2.0M"

    def test_ms_switches_to_seconds(self):
        assert format_ms(12.3) == "12.3ms"
        assert format_ms(2500.0) == "2.5s"


class TestTable:
    def test_alignment_and_content(self):
        text = render_table(("name", "value"), [("alpha", 1), ("b", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in text and "22" in text
        assert set(lines[1]) <= {"-", " "}

    def test_empty_rows(self):
        text = render_table(("a",), [])
        assert "a" in text


class TestECDFRendering:
    def test_quantiles_present(self):
        text = render_ecdf(ECDF(range(100)), "demo", probe_points=(50,))
        assert "demo" in text
        assert "p50=" in text
        assert "F(50)" in text

    def test_empty(self):
        assert "(empty)" in render_ecdf(ECDF([]), "demo")


class TestHeatmapRendering:
    def test_axis_labels_and_rows(self):
        rng = np.random.default_rng(1)
        points = list(zip(rng.uniform(3, 2000, 300), rng.uniform(0, 100, 300)))
        heatmap = build_heatmap(points)
        text = render_heatmap(heatmap)
        assert "AS-path lifetime" in text
        assert "[" in text and ")" in text
        # One row per increase decile plus header and separator.
        assert len(text.splitlines()) == heatmap.cells.shape[0] + 2
