"""Tests for the artifact cache and stage-timing recorder."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.harness.engine import (
    ArtifactCache,
    Timings,
    cached_longterm,
    cached_platform,
    config_fingerprint,
    default_cache_dir,
)
from repro.datasets.longterm import LongTermConfig
from repro.measurement.platform import PlatformConfig


class TestTimings:
    def test_stage_context_records(self):
        timings = Timings()
        with timings.stage("alpha"):
            pass
        assert len(timings.stages) == 1
        assert timings.stages[0][0] == "alpha"
        assert timings.stages[0][1] >= 0.0

    def test_record_and_total(self):
        timings = Timings()
        timings.record("a", 1.5)
        timings.record("b", 0.5)
        assert timings.total() == pytest.approx(2.0)

    def test_as_dict_sums_repeats(self):
        timings = Timings()
        timings.record("x", 1.0)
        timings.record("y", 2.0)
        timings.record("x", 3.0)
        assert timings.as_dict() == {"x": 4.0, "y": 2.0}
        # Insertion order of first appearance is preserved.
        assert list(timings.as_dict()) == ["x", "y"]

    def test_as_records_keeps_completion_order(self):
        timings = Timings()
        timings.record("x", 1.0)
        timings.record("x", 2.0)
        assert timings.as_records() == [
            {"stage": "x", "seconds": 1.0},
            {"stage": "x", "seconds": 2.0},
        ]

    def test_render_mentions_stages_and_total(self):
        timings = Timings()
        timings.record("topology", 0.25)
        text = timings.render()
        assert "topology" in text
        assert "total" in text

    def test_stage_records_on_exception(self):
        timings = Timings()
        with pytest.raises(RuntimeError):
            with timings.stage("boom"):
                raise RuntimeError("x")
        assert [name for name, _ in timings.stages] == ["boom"]


class TestTimingsSpanShim:
    """Timings is a shim over tracing spans: same stages, both systems."""

    def test_stage_also_opens_span(self):
        from repro.obs.trace import Tracer, use_tracer

        tracer = Tracer()
        timings = Timings()
        with use_tracer(tracer):
            with timings.stage("topology"):
                with timings.stage("routing"):
                    pass
        assert [name for name, _ in timings.stages] == ["routing", "topology"]
        assert [span.name for span in tracer.spans] == ["topology", "routing"]
        # The span tree nests; the flat table agrees on wall time.
        topology, routing = tracer.spans
        assert routing.parent_id == topology.span_id
        by_name = dict(timings.stages)
        assert by_name["topology"] == pytest.approx(
            topology.duration_seconds, abs=0.05
        )

    def test_record_creates_no_span(self):
        from repro.obs.trace import Tracer, use_tracer

        tracer = Tracer()
        timings = Timings()
        with use_tracer(tracer):
            timings.record("external", 1.25)
        assert timings.as_dict() == {"external": 1.25}
        assert tracer.spans == []

    def test_stage_span_closes_on_exception(self):
        from repro.obs.trace import Tracer, use_tracer

        tracer = Tracer()
        timings = Timings()
        with use_tracer(tracer):
            with pytest.raises(RuntimeError):
                with timings.stage("boom"):
                    raise RuntimeError("x")
        assert tracer.spans[0].end is not None
        assert tracer.current() is None


class TestFingerprint:
    def test_equal_configs_equal_fingerprint(self):
        a = PlatformConfig(seed=3, cluster_count=8)
        b = PlatformConfig(seed=3, cluster_count=8)
        assert config_fingerprint("platform", a) == config_fingerprint("platform", b)

    def test_seed_changes_fingerprint(self):
        a = PlatformConfig(seed=3)
        b = PlatformConfig(seed=4)
        assert config_fingerprint("platform", a) != config_fingerprint("platform", b)

    def test_nested_field_changes_fingerprint(self):
        a = PlatformConfig(seed=3)
        b = PlatformConfig(seed=3)
        b.congestion = dataclasses.replace(b.congestion, anchor_fraction=0.9)
        assert config_fingerprint("platform", a) != config_fingerprint("platform", b)

    def test_kind_separates_namespaces(self):
        config = PlatformConfig(seed=3)
        assert config_fingerprint("platform", config) != config_fingerprint(
            "longterm", config
        )


class TestArtifactCache:
    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        payload = {"answer": 42, "array": np.arange(5)}
        cache.store("demo", "abc123", payload)
        loaded = cache.load("demo", "abc123")
        assert loaded["answer"] == 42
        assert np.array_equal(loaded["array"], payload["array"])

    def test_miss_returns_none(self, tmp_path):
        assert ArtifactCache(tmp_path).load("demo", "missing") is None

    @pytest.mark.parametrize(
        "garbage",
        [b"this is not a pickle", b"garbage\n", b"", b"\x80\x05"],
        ids=["text", "get-opcode", "empty", "truncated"],
    )
    def test_corrupt_entry_reads_as_miss_and_is_removed(self, tmp_path, garbage):
        cache = ArtifactCache(tmp_path)
        path = cache.path("demo", "bad")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(garbage)
        assert cache.load("demo", "bad") is None
        assert not path.exists()

    def test_clear_removes_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("demo", "one", 1)
        cache.store("demo", "two", 2)
        assert cache.clear() == 2
        assert cache.load("demo", "one") is None

    def test_default_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_outcomes_are_counted(self, tmp_path):
        from repro.obs.metrics import get_registry

        registry = get_registry()
        registry.reset()
        cache = ArtifactCache(tmp_path)
        cache.load("demo", "nothing")          # miss
        cache.store("demo", "abc", [1, 2])     # store
        cache.load("demo", "abc")              # hit
        bad = cache.path("demo", "bad")
        bad.write_bytes(b"garbage")
        cache.load("demo", "bad")              # corrupt
        counters = registry.snapshot()["counters"]
        registry.reset()
        assert counters["cache.miss"] == 1
        assert counters["cache.store"] == 1
        assert counters["cache.hit"] == 1
        assert counters["cache.corrupt"] == 1


@pytest.fixture(scope="module")
def tiny_config():
    return PlatformConfig(seed=21, cluster_count=6, duration_hours=24.0)


class TestCachedBuilders:
    def test_platform_miss_then_hit(self, tmp_path, tiny_config):
        cache = ArtifactCache(tmp_path)
        timings = Timings()
        built, hit = cached_platform(tiny_config, cache=cache, timings=timings)
        assert hit is False
        loaded, hit2 = cached_platform(tiny_config, cache=cache, timings=timings)
        assert hit2 is True
        assert [s.server_id for s in loaded.measurement_servers()] == [
            s.server_id for s in built.measurement_servers()
        ]
        stages = timings.as_dict()
        assert "platform-store" in stages
        assert "topology" in stages

    def test_longterm_miss_then_hit_bit_identical(self, tmp_path, tiny_config):
        cache = ArtifactCache(tmp_path)
        platform, _ = cached_platform(tiny_config, cache=cache)
        config = LongTermConfig(days=1.0)
        built, hit = cached_longterm(
            tiny_config, config, platform=platform, cache=cache
        )
        assert hit is False
        loaded, hit2 = cached_longterm(tiny_config, config, cache=cache)
        assert hit2 is True
        assert list(built.timelines) == list(loaded.timelines)
        for key, expected in built.timelines.items():
            actual = loaded.timelines[key]
            assert np.array_equal(expected.rtt_ms, actual.rtt_ms, equal_nan=True)
            assert np.array_equal(expected.path_id, actual.path_id)
            assert expected.paths == actual.paths

    def test_refresh_forces_rebuild(self, tmp_path, tiny_config):
        cache = ArtifactCache(tmp_path)
        cached_platform(tiny_config, cache=cache)
        _, hit = cached_platform(tiny_config, cache=cache, refresh=True)
        assert hit is False
