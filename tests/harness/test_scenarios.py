"""Tests for scenario definitions and caching."""

import pytest

from repro.harness.scenarios import SCENARIOS, Scenario, get_scenario


class TestScenarios:
    def test_known_names(self):
        assert {"small", "default", "large"} <= set(SCENARIOS)

    def test_unknown_name_lists_valid(self):
        with pytest.raises(KeyError, match="small"):
            get_scenario("nope")

    def test_platform_config_window_covers_campaigns(self):
        for scenario in SCENARIOS.values():
            config = scenario.platform_config()
            assert config.duration_hours >= scenario.longterm_days * 24.0
            assert config.duration_hours >= scenario.shortterm_trace_days * 24.0

    def test_congestion_rich_flag(self):
        assert SCENARIOS["large"].congestion_rich
        config = SCENARIOS["large"].platform_config()
        assert config.congestion.anchor_popularity_halflife is None

    def test_seed_parameterizes_config(self):
        scenario = get_scenario("small")
        assert scenario.platform_config(seed=5).seed == 5

    def test_grids(self):
        scenario = Scenario(
            name="x", cluster_count=4, longterm_days=30.0,
            shortterm_ping_days=7.0, shortterm_trace_days=10.0,
        )
        assert scenario.longterm_config().days == 30.0
        assert scenario.shortterm_config().ping_grid().rounds == 672
