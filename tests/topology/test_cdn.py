"""Tests for the CDN deployment."""

import numpy as np
import pytest

from repro.net.ip import IPVersion
from repro.topology.cdn import deploy_cdn


class TestDeployment:
    def test_cluster_count(self, cdn):
        assert len(cdn.clusters) == 8

    def test_servers_in_host_as_space(self, graph, plan, cdn):
        for server in cdn.servers.values():
            assert plan.origin(server.ipv4) == server.asn
            if server.ipv6 is not None:
                assert plan.origin(server.ipv6) == server.asn

    def test_cluster_city_in_host_footprint(self, graph, cdn):
        for cluster in cdn.clusters.values():
            assert cluster.city in graph.ases[cluster.asn].cities

    def test_measurement_server_is_first(self, cdn):
        for cluster in cdn.clusters.values():
            assert cluster.measurement_server is cluster.servers[0]

    def test_dual_stack_hosts_capable(self, graph, cdn):
        for server in cdn.servers.values():
            if server.dual_stack:
                assert graph.ases[server.asn].ipv6_capable

    def test_server_lookup_by_address(self, cdn):
        server = next(iter(cdn.servers.values()))
        assert cdn.server_by_address(server.ipv4) is server
        if server.ipv6 is not None:
            assert cdn.server_by_address(server.ipv6) is server

    def test_address_accessor(self, cdn):
        server = next(iter(cdn.servers.values()))
        assert server.address(IPVersion.V4) == server.ipv4
        assert server.address(IPVersion.V6) == server.ipv6

    def test_country_mix_sums_to_one(self, cdn):
        assert sum(cdn.country_mix().values()) == pytest.approx(1.0)


class TestDeployParameters:
    def test_dual_stack_fraction_honored(self, graph, plan):
        deployment = deploy_cdn(
            graph, plan, cluster_count=20, dual_stack_fraction=0.5,
            rng=np.random.default_rng(8),
        )
        dual = sum(
            1 for cluster in deployment.clusters.values()
            if cluster.measurement_server.dual_stack
        )
        assert dual == 10

    def test_servers_per_cluster(self, graph, plan):
        deployment = deploy_cdn(
            graph, plan, cluster_count=3, servers_per_cluster=4,
            rng=np.random.default_rng(9),
        )
        for cluster in deployment.clusters.values():
            assert len(cluster.servers) == 4
        assert len(deployment.servers) == 12

    def test_invalid_arguments(self, graph, plan):
        with pytest.raises(ValueError):
            deploy_cdn(graph, plan, cluster_count=0)
        with pytest.raises(ValueError):
            deploy_cdn(graph, plan, cluster_count=1, dual_stack_fraction=1.5)

    def test_measurement_servers_listing(self, cdn):
        servers = cdn.measurement_servers()
        assert len(servers) == len(cdn.clusters)
        dual_only = cdn.measurement_servers(dual_stack_only=True)
        assert all(server.dual_stack for server in dual_only)
