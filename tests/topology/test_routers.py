"""Tests for the router-level topology."""

import pytest

from repro.net.asn import ASRelationship
from repro.net.ip import IPVersion
from repro.topology.generator import LinkMedium


class TestRouters:
    def test_border_and_core_router_per_footprint_city(self, graph, router_topology):
        for asn in graph.asns()[:30]:
            for city in graph.ases[asn].cities:
                border = router_topology.border_router(asn, city)
                core = router_topology.core_router(asn, city)
                assert border.owner == asn and core.owner == asn
                assert border.router_id != core.router_id

    def test_internal_interfaces_registered(self, router_topology):
        for router_id, address in list(router_topology.internal_v4.items())[:100]:
            interface = router_topology.interfaces[address]
            assert interface.router_id == router_id
            assert interface.owner == router_topology.routers[router_id].owner

    def test_internal_v6_follows_capability(self, graph, router_topology):
        for router_id, router in list(router_topology.routers.items())[:200]:
            capable = graph.ases[router.owner].ipv6_capable
            has_v6 = router_topology.internal_v6.get(router_id) is not None
            assert has_v6 == capable

    def test_respond_probabilities_in_range(self, router_topology):
        for router in router_topology.routers.values():
            assert 0.0 <= router.respond_probability <= 1.0


class TestLinkInstances:
    def test_every_edge_realized(self, graph, router_topology):
        for a, b in graph.edges():
            assert router_topology.link_instances(a, b), f"edge {a}-{b} unrealized"

    def test_link_routers_belong_to_endpoints(self, graph, router_topology):
        for link in router_topology.all_links():
            assert router_topology.routers[link.router_a].owner == link.asn_a
            assert router_topology.routers[link.router_b].owner == link.asn_b

    def test_interface_addresses_inside_subnet(self, router_topology):
        for link in router_topology.all_links():
            assert link.subnet_v4.contains(link.interface_a_v4)
            assert link.subnet_v4.contains(link.interface_b_v4)
            if link.subnet_v6 is not None:
                assert link.subnet_v6.contains(link.interface_a_v6)
                assert link.subnet_v6.contains(link.interface_b_v6)

    def test_c2p_subnet_from_provider(self, graph, router_topology):
        """The paper's addressing convention: providers allocate the link."""
        for link in router_topology.all_links():
            relationship = graph.relationships.get(link.asn_a, link.asn_b)
            if relationship is ASRelationship.CUSTOMER:  # b is a's customer
                assert link.subnet_owner == link.asn_a
            elif relationship is ASRelationship.PROVIDER:  # b is a's provider
                assert link.subnet_owner == link.asn_b

    def test_ixp_links_use_lan_space(self, graph, router_topology):
        for link in router_topology.all_links():
            if link.medium is LinkMedium.IXP:
                assert isinstance(link.subnet_owner, tuple)
                assert link.subnet_owner[0] == "ixp"

    def test_far_interface_orientation(self, router_topology):
        link = router_topology.all_links()[0]
        from_a = link.far_interface(link.asn_a, IPVersion.V4)
        from_b = link.far_interface(link.asn_b, IPVersion.V4)
        assert from_a == link.interface_b_v4
        assert from_b == link.interface_a_v4
        with pytest.raises(ValueError):
            link.far_interface(-1, IPVersion.V4)

    def test_interface_owner_is_router_operator(self, router_topology):
        """Ground truth: the link interface belongs to the router's AS even
        when the address comes from the other side's space."""
        for link in router_topology.all_links()[:100]:
            assert router_topology.interface_owner(link.interface_a_v4) == link.asn_a
            assert router_topology.interface_owner(link.interface_b_v4) == link.asn_b

    def test_v6_interfaces_only_on_v6_edges(self, graph, router_topology):
        for link in router_topology.all_links():
            if not graph.edge_supports_ipv6(link.asn_a, link.asn_b):
                assert link.subnet_v6 is None
                assert not link.supports_ipv6()

    def test_unique_link_ids(self, router_topology):
        ids = [link.link_id for link in router_topology.all_links()]
        assert len(ids) == len(set(ids))
