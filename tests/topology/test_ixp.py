"""Tests for IXP helpers."""

from repro.topology.generator import LinkMedium
from repro.topology.ixp import ixp_membership_counts, public_peering_edges


class TestIXPQueries:
    def test_public_edges_are_ixp_medium(self, graph):
        for a, b, ixp_id in public_peering_edges(graph):
            assert graph.medium(a, b) is LinkMedium.IXP
            assert graph.edge_ixp[(a, b)] == ixp_id

    def test_public_edges_between_members(self, graph):
        for a, b, ixp_id in public_peering_edges(graph):
            members = graph.ixps[ixp_id].members
            assert a in members and b in members

    def test_membership_counts(self, graph):
        counts = ixp_membership_counts(graph)
        assert set(counts) == set(graph.ixps)
        for ixp_id, count in counts.items():
            assert count == len(graph.ixps[ixp_id].members)
