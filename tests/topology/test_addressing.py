"""Tests for address allocation and the BGP RIB."""

import numpy as np
import pytest

from repro.net.ip import IPAddress, IPVersion
from repro.topology.addressing import AddressingConfig, allocate_addresses


class TestPerASBlocks:
    def test_every_as_has_v4_blocks(self, graph, plan):
        for asn in graph.asns():
            addressing = plan.per_as[asn]
            assert addressing.announced_v4.length == 16
            assert addressing.infra_v4.length == 22

    def test_v6_blocks_follow_capability(self, graph, plan):
        for asn in graph.asns():
            addressing = plan.per_as[asn]
            capable = graph.ases[asn].ipv6_capable
            assert (addressing.announced_v6 is not None) == capable
            assert (addressing.infra_v6 is not None) == capable

    def test_blocks_disjoint_across_ases(self, graph, plan):
        seen = []
        for asn in graph.asns():
            addressing = plan.per_as[asn]
            for block in (addressing.announced_v4, addressing.infra_v4):
                for other in seen:
                    assert not block.contains_prefix(other)
                    assert not other.contains_prefix(block)
                seen.append(block)

    def test_infra_halves_partition_block(self, plan):
        addressing = next(iter(plan.per_as.values()))
        announced = addressing.infra_half(IPVersion.V4, announced=True)
        unannounced = addressing.infra_half(IPVersion.V4, announced=False)
        assert announced.length == unannounced.length == addressing.infra_v4.length + 1
        assert announced != unannounced
        assert addressing.infra_v4.contains_prefix(announced)
        assert addressing.infra_v4.contains_prefix(unannounced)


class TestOriginLookup:
    def test_announced_space_maps_to_owner(self, graph, plan):
        for asn in graph.asns()[:20]:
            address = plan.per_as[asn].announced_v4.address(1000)
            assert plan.origin(address) == asn

    def test_announced_infra_half_maps(self, graph, plan):
        asn = graph.asns()[0]
        half = plan.per_as[asn].infra_half(IPVersion.V4, announced=True)
        assert plan.origin(half.address(5)) == asn

    def test_unannounced_infra_half_unmapped(self, graph, plan):
        asn = graph.asns()[0]
        half = plan.per_as[asn].infra_half(IPVersion.V4, announced=False)
        assert plan.origin(half.address(5)) is None

    def test_unallocated_space_unmapped(self, plan):
        assert plan.origin(IPAddress.parse("203.0.113.1")) is None


class TestLinkSubnets:
    def test_sequential_allocation_no_overlap(self, graph, plan):
        asn = graph.asns()[0]
        first = plan.allocate_link_subnet(asn, IPVersion.V4)
        second = plan.allocate_link_subnet(asn, IPVersion.V4)
        assert first != second
        assert not first.contains_prefix(second)

    def test_announced_vs_unannounced_pools(self, graph, plan):
        asn = graph.asns()[1]
        announced = plan.allocate_link_subnet(asn, IPVersion.V4, unannounced=False)
        unannounced = plan.allocate_link_subnet(asn, IPVersion.V4, unannounced=True)
        assert plan.origin(announced.address(1)) == asn
        assert plan.origin(unannounced.address(1)) is None

    def test_unknown_owner_rejected(self, plan):
        with pytest.raises(KeyError):
            plan.allocate_link_subnet(999_999, IPVersion.V4)

    def test_ixp_lan_subnets(self, graph, plan):
        if not graph.ixps:
            pytest.skip("generated graph has no IXPs")
        ixp_id = next(iter(graph.ixps))
        subnet = plan.allocate_link_subnet(("ixp", ixp_id), IPVersion.V4)
        assert plan.ixp_lan_v4[ixp_id].contains_prefix(subnet)

    def test_ixp_lan_announcement_flag_consistent(self, graph, plan):
        for ixp_id, announced in plan.ixp_lan_announced.items():
            address = plan.ixp_lan_v4[ixp_id].address(9)
            assert (plan.origin(address) is not None) == announced


class TestHosts:
    def test_host_addresses_inside_announced_block(self, graph, plan):
        asn = graph.asns()[2]
        address = plan.allocate_host(asn, IPVersion.V4)
        assert plan.per_as[asn].announced_v4.contains(address)
        assert plan.origin(address) == asn

    def test_hosts_unique(self, graph, plan):
        asn = graph.asns()[3]
        addresses = {plan.allocate_host(asn, IPVersion.V4) for _ in range(50)}
        assert len(addresses) == 50

    def test_v6_host_requires_capability(self, graph, plan):
        v4_only = [asn for asn in graph.asns() if not graph.ases[asn].ipv6_capable]
        if not v4_only:
            pytest.skip("all ASes are v6 capable in this graph")
        with pytest.raises(KeyError):
            plan.allocate_host(v4_only[0], IPVersion.V6)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AddressingConfig(link_unannounced_probability_v4=2.0).validate()

    def test_determinism(self, graph):
        first = allocate_addresses(graph, rng=np.random.default_rng(9))
        second = allocate_addresses(graph, rng=np.random.default_rng(9))
        assert first.ixp_lan_announced == second.ixp_lan_announced
        for asn in graph.asns():
            assert first.per_as[asn] == second.per_as[asn]
