"""Tests for the AS-graph generator."""

import numpy as np
import pytest

from repro.net.asn import ASRelationship
from repro.topology.generator import (
    ASTier,
    LinkMedium,
    TopologyConfig,
    generate_topology,
)


class TestStructure:
    def test_counts(self, graph):
        config = TopologyConfig()
        assert len(graph.asns(ASTier.TIER1)) == config.n_tier1
        assert len(graph.asns(ASTier.TRANSIT)) == config.n_transit
        assert len(graph.asns(ASTier.STUB)) == config.n_stub

    def test_tier1_clique_peers(self, graph):
        tier1s = graph.asns(ASTier.TIER1)
        for i, a in enumerate(tier1s):
            for b in tier1s[i + 1 :]:
                assert graph.relationships.get(a, b) is ASRelationship.PEER

    def test_every_nontier1_has_a_provider(self, graph):
        for asn in graph.asns():
            system = graph.ases[asn]
            if system.tier is ASTier.TIER1:
                continue
            assert list(graph.relationships.providers(asn)), f"AS{asn} has no provider"

    def test_tier1s_have_no_providers(self, graph):
        for asn in graph.asns(ASTier.TIER1):
            assert not list(graph.relationships.providers(asn))

    def test_footprints_nonempty(self, graph):
        for system in graph.ases.values():
            assert len(system.cities) >= 1

    def test_validate_passes(self, graph):
        graph.validate()

    def test_media_assigned_to_every_edge(self, graph):
        for a, b in graph.edges():
            assert graph.medium(a, b) in (LinkMedium.PRIVATE, LinkMedium.IXP)

    def test_ixp_edges_have_host_ixp(self, graph):
        for edge, medium in graph.edge_media.items():
            if medium is LinkMedium.IXP:
                assert edge in graph.edge_ixp
                ixp = graph.ixps[graph.edge_ixp[edge]]
                assert edge[0] in ixp.members and edge[1] in ixp.members


class TestIPv6Normalization:
    def test_capable_implies_capable_provider_chain(self, graph):
        """Every capable non-tier-1 AS has a v6 edge to a capable provider."""
        for asn in graph.asns():
            system = graph.ases[asn]
            if not system.ipv6_capable or system.tier is ASTier.TIER1:
                continue
            assert any(
                graph.ases[provider].ipv6_capable
                and graph.edge_supports_ipv6(asn, provider)
                for provider in graph.relationships.providers(asn)
            ), f"capable AS{asn} has no IPv6 upstream"

    def test_v6_edges_require_capable_endpoints(self, graph):
        for (a, b), enabled in graph.edge_ipv6.items():
            if enabled:
                assert graph.ases[a].ipv6_capable and graph.ases[b].ipv6_capable

    def test_neighbors_filtering(self, graph):
        for asn in graph.asns()[:20]:
            v6_neighbors = set(graph.neighbors(asn, ipv6=True))
            all_neighbors = set(graph.neighbors(asn))
            assert v6_neighbors <= all_neighbors


class TestConfigValidation:
    def test_too_few_tier1(self):
        with pytest.raises(ValueError):
            generate_topology(TopologyConfig(n_tier1=1))

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            generate_topology(TopologyConfig(transit_peer_probability=1.5))

    def test_bad_range(self):
        with pytest.raises(ValueError):
            generate_topology(TopologyConfig(stub_providers=(2, 1)))


class TestDeterminism:
    def test_same_seed_same_graph(self):
        first = generate_topology(rng=np.random.default_rng(77))
        second = generate_topology(rng=np.random.default_rng(77))
        assert first.asns() == second.asns()
        assert first.edges() == second.edges()
        assert first.edge_ipv6 == second.edge_ipv6
        for asn in first.asns():
            assert first.ases[asn].cities == second.ases[asn].cities

    def test_different_seed_different_graph(self):
        first = generate_topology(rng=np.random.default_rng(1))
        second = generate_topology(rng=np.random.default_rng(2))
        assert first.edges() != second.edges()


class TestSmallTopology:
    def test_minimal_topology_builds(self):
        config = TopologyConfig(n_tier1=2, n_transit=2, n_stub=2, ixp_count=1)
        graph = generate_topology(config, rng=np.random.default_rng(5))
        assert len(graph.ases) == 6
        graph.validate()
