"""Tests for the world model and CDN placement weights."""

import numpy as np
import pytest

from repro.topology.world import (
    COUNTRY_WEIGHTS,
    WORLD_CITIES,
    cities_by_continent,
    cities_by_country,
    sample_cities,
    sample_city,
)


class TestWorldTable:
    def test_no_duplicate_cities(self):
        names = [(city.city, city.country) for city in WORLD_CITIES]
        assert len(names) == len(set(names))

    def test_every_weighted_country_has_cities(self):
        for country in COUNTRY_WEIGHTS:
            assert cities_by_country(country), f"no cities for weighted country {country}"

    def test_all_continent_codes_known(self):
        continents = {city.continent for city in WORLD_CITIES}
        assert continents == {"NA", "SA", "EU", "AS", "OC", "AF"}

    def test_coordinates_valid(self):
        for city in WORLD_CITIES:
            assert -90 <= city.latitude <= 90
            assert -180 <= city.longitude <= 180

    def test_cities_by_continent(self):
        europe = cities_by_continent("EU")
        assert all(city.continent == "EU" for city in europe)
        assert len(europe) >= 10


class TestSampling:
    def test_sample_city_deterministic_per_seed(self):
        a = sample_city(np.random.default_rng(1))
        b = sample_city(np.random.default_rng(1))
        assert a == b

    def test_sample_cities_count(self):
        cities = sample_cities(np.random.default_rng(2), 10)
        assert len(cities) == 10

    def test_unique_sampling(self):
        cities = sample_cities(np.random.default_rng(3), 20, unique=True)
        assert len(set(cities)) == 20

    def test_unique_overdraw_rejected(self):
        with pytest.raises(ValueError):
            sample_cities(np.random.default_rng(4), len(WORLD_CITIES) + 1, unique=True)

    def test_us_share_matches_paper_calibration(self):
        # Section 2.1: ~39% of servers in the US.  Sampling should land in
        # a generous band around that.
        rng = np.random.default_rng(5)
        cities = sample_cities(rng, 4000)
        us_share = np.mean([city.country == "US" for city in cities])
        assert 0.33 <= us_share <= 0.45

    def test_next_five_countries_share(self):
        # AU, DE, IN, JP, CA together contribute ~19% in the paper.
        rng = np.random.default_rng(6)
        cities = sample_cities(rng, 4000)
        share = np.mean([city.country in {"AU", "DE", "IN", "JP", "CA"} for city in cities])
        assert 0.13 <= share <= 0.26
