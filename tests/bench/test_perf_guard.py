"""Perf guard: regression thresholds over pipeline benchmark summaries."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "perf_guard",
    Path(__file__).resolve().parents[2] / "benchmarks" / "perf_guard.py",
)
perf_guard = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(perf_guard)


def _summary(
    build_seconds=1.0,
    serial_wall=10.0,
    stream_wall=7.0,
    stream_rss_ratio=0.2,
):
    return {
        "benchmark": "pipeline",
        "schema": 3,
        "scenario": "default",
        "phases": {
            "serial": {
                "wall_seconds": serial_wall,
                "stage_seconds": {"longterm-build": build_seconds},
            },
            "stream": {"wall_seconds": stream_wall},
        },
        "memory": {"stream_vs_serial_rss": stream_rss_ratio},
    }


def _run(tmp_path, baseline, candidate, extra=()):
    base = tmp_path / "base.json"
    cand = tmp_path / "cand.json"
    base.write_text(json.dumps(baseline))
    cand.write_text(json.dumps(candidate))
    return perf_guard.main(
        ["--baseline", str(base), "--candidate", str(cand), *extra]
    )


def test_passes_within_all_bounds(tmp_path, capsys):
    assert _run(tmp_path, _summary(), _summary()) == 0
    assert "perf-guard: OK" in capsys.readouterr().out


def test_fails_on_longterm_build_regression(tmp_path, capsys):
    assert _run(tmp_path, _summary(), _summary(build_seconds=2.5)) == 1
    assert "serial longterm-build" in capsys.readouterr().out


def test_fails_when_stream_wall_exceeds_factor(tmp_path, capsys):
    candidate = _summary(stream_wall=20.0)  # 2x serial > 1.3x default
    assert _run(tmp_path, _summary(), candidate) == 1
    out = capsys.readouterr().out
    assert "stream wall" in out and "exceeds" in out


def test_fails_when_stream_rss_exceeds_bound(tmp_path, capsys):
    candidate = _summary(stream_rss_ratio=0.4)
    assert _run(tmp_path, _summary(), candidate) == 1
    out = capsys.readouterr().out
    assert "stream RSS ratio" in out


def test_custom_stream_thresholds(tmp_path):
    candidate = _summary(stream_wall=20.0, stream_rss_ratio=0.4)
    assert _run(
        tmp_path, _summary(), candidate,
        extra=["--stream-wall-factor", "3.0", "--stream-rss-bound", "0.5"],
    ) == 0


def test_missing_stream_phase_only_guards_build(tmp_path):
    summary = _summary()
    del summary["phases"]["stream"]
    del summary["memory"]
    assert _run(tmp_path, summary, dict(summary)) == 0


def test_scenario_mismatch_refuses(tmp_path):
    candidate = _summary()
    candidate["scenario"] = "large"
    with pytest.raises(SystemExit, match="scenario mismatch"):
        _run(tmp_path, _summary(), candidate)
