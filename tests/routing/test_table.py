"""Tests for the route-table containers."""

from repro.net.ip import IPVersion
from repro.routing.policy import RouteClass
from repro.routing.table import CandidateRoute, RouteTable


class TestCandidateRoute:
    def test_make_derives_edges(self):
        route = CandidateRoute.make((1, 2, 3), RouteClass.CUSTOMER, 0)
        assert route.edges == {(1, 2), (2, 3)}
        assert route.via == 2

    def test_edges_are_unordered(self):
        route = CandidateRoute.make((3, 2, 1), RouteClass.PEER, 1)
        assert route.uses_edge(1, 2) and route.uses_edge(2, 1)
        assert not route.uses_edge(1, 3)

    def test_self_route(self):
        route = CandidateRoute.make((7,), RouteClass.SELF, 0)
        assert route.via == 7
        assert route.edges == frozenset()

    def test_tier_default(self):
        assert CandidateRoute.make((1, 2), RouteClass.PEER, 0).tier == 0
        assert CandidateRoute.make((1, 2), RouteClass.PEER, 0, tier=1).tier == 1


class TestRouteTable:
    def _table(self):
        table = RouteTable(version=IPVersion.V4)
        table.candidates[(1, 3)] = (
            CandidateRoute.make((1, 2, 3), RouteClass.CUSTOMER, 0),
            CandidateRoute.make((1, 4, 3), RouteClass.PEER, 1),
        )
        return table

    def test_routes_and_best(self):
        table = self._table()
        assert len(table.routes(1, 3)) == 2
        assert table.best(1, 3).path == (1, 2, 3)

    def test_missing_pair(self):
        table = self._table()
        assert table.routes(9, 9) == ()
        assert table.best(9, 9) is None

    def test_reachable_pairs(self):
        table = self._table()
        assert table.reachable_pairs() == [(1, 3)]
