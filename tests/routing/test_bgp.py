"""Tests for path-vector route computation."""

import numpy as np
import pytest

from repro.net.asn import ASRelationship
from repro.net.ip import IPVersion
from repro.routing.bgp import compute_best_routes, compute_route_table
from repro.routing.policy import RouteClass, is_valley_free
from repro.topology.generator import ASGraph, ASTier, AutonomousSystem, LinkMedium
from repro.topology.world import WORLD_CITIES


def _tiny_graph() -> ASGraph:
    """A hand-built 6-AS topology with a known route structure.

    ::

        T1 --- T2        (tier-1 peering)
        |       |
        A       B        (transit customers)
        |       |
        X       Y        (stubs)

    plus a peering edge A -- B.
    """
    graph = ASGraph()
    city = WORLD_CITIES[0]
    for index, (asn, tier) in enumerate(
        [(1, ASTier.TIER1), (2, ASTier.TIER1), (10, ASTier.TRANSIT),
         (20, ASTier.TRANSIT), (100, ASTier.STUB), (200, ASTier.STUB)]
    ):
        graph.ases[asn] = AutonomousSystem(
            asn=asn, tier=tier, cities=(city,), ipv6_capable=True
        )

    def edge(a, b, relationship):
        graph.relationships.add(a, b, relationship)
        key = (a, b) if a < b else (b, a)
        graph.edge_media[key] = LinkMedium.PRIVATE
        graph.edge_ipv6[key] = True

    edge(1, 2, ASRelationship.PEER)
    edge(1, 10, ASRelationship.CUSTOMER)
    edge(2, 20, ASRelationship.CUSTOMER)
    edge(10, 100, ASRelationship.CUSTOMER)
    edge(20, 200, ASRelationship.CUSTOMER)
    edge(10, 20, ASRelationship.PEER)
    return graph


@pytest.fixture(scope="module")
def tiny():
    return _tiny_graph()


class TestBestRoutes:
    def test_destination_has_self_route(self, tiny):
        best = compute_best_routes(tiny, 200)
        assert best[200] == (RouteClass.SELF, (200,))

    def test_customer_route_preferred_over_peer(self, tiny):
        best = compute_best_routes(tiny, 200)
        # AS 2 reaches 200 via its customer chain.
        assert best[2] == (RouteClass.CUSTOMER, (2, 20, 200))
        # AS 10 prefers its peer edge to 20 over climbing to tier-1s.
        assert best[10] == (RouteClass.PEER, (10, 20, 200))

    def test_provider_route_descends(self, tiny):
        best = compute_best_routes(tiny, 200)
        # Stub 100 reaches 200 via its provider 10.
        assert best[100][0] is RouteClass.PROVIDER
        assert best[100][1][0:2] == (100, 10)

    def test_all_reachable(self, tiny):
        best = compute_best_routes(tiny, 100)
        assert set(best) == {1, 2, 10, 20, 100, 200}

    def test_paths_valley_free(self, tiny):
        for destination in (100, 200, 1):
            for _, path in compute_best_routes(tiny, destination).values():
                assert is_valley_free(tiny.relationships, path) is True


class TestRouteTable:
    def test_primary_is_best_route(self, tiny):
        table = compute_route_table(tiny)
        best = compute_best_routes(tiny, 200)
        primary = table.best(100, 200)
        assert primary is not None
        # The steady-state selection extends the chosen neighbor's best path.
        assert primary.path[0] == 100
        assert primary.path[1:] == best[primary.path[1]][1]
        assert primary.tier == 0

    def test_all_candidates_valley_free(self, tiny):
        table = compute_route_table(tiny)
        for (src, dst), candidates in table.candidates.items():
            for candidate in candidates:
                assert is_valley_free(tiny.relationships, candidate.path) is True, (
                    f"{src}->{dst}: {candidate.path}"
                )

    def test_candidates_loop_free(self, tiny):
        table = compute_route_table(tiny)
        for candidates in table.candidates.values():
            for candidate in candidates:
                assert len(set(candidate.path)) == len(candidate.path)

    def test_candidate_endpoints(self, tiny):
        table = compute_route_table(tiny)
        for (src, dst), candidates in table.candidates.items():
            for candidate in candidates:
                assert candidate.path[0] == src
                assert candidate.path[-1] == dst

    def test_tier1_alternatives_exist(self, tiny):
        # 100 -> 200 has the peer shortcut and the tier-1 detour.
        table = compute_route_table(tiny)
        routes = table.routes(100, 200)
        assert len(routes) >= 2
        paths = {route.path for route in routes}
        assert (100, 10, 20, 200) in paths

    def test_self_pair(self, tiny):
        table = compute_route_table(tiny)
        assert table.best(100, 100).path == (100,)

    def test_max_alternatives_cap(self, tiny):
        table = compute_route_table(tiny, max_alternatives=1)
        for candidates in table.candidates.values():
            assert len(candidates) == 1

    def test_max_alternatives_validation(self, tiny):
        with pytest.raises(ValueError):
            compute_route_table(tiny, max_alternatives=0)

    def test_ranks_sequential(self, tiny):
        table = compute_route_table(tiny)
        for candidates in table.candidates.values():
            assert [candidate.rank for candidate in candidates] == list(
                range(len(candidates))
            )


class TestGeneratedGraph:
    def test_full_reachability_v4(self, graph):
        table = compute_route_table(graph, IPVersion.V4)
        asns = graph.asns()
        for src in asns[:10]:
            for dst in asns[-10:]:
                if src == dst:
                    continue
                assert table.best(src, dst) is not None, f"{src}->{dst} unreachable"

    def test_all_candidates_valley_free_generated(self, graph):
        table = compute_route_table(graph, IPVersion.V4)
        checked = 0
        for candidates in table.candidates.values():
            for candidate in candidates:
                assert is_valley_free(graph.relationships, candidate.path) is True
                checked += 1
            if checked > 5000:
                break

    def test_v6_subset_of_v4_reachability(self, graph):
        v4 = compute_route_table(graph, IPVersion.V4)
        v6 = compute_route_table(graph, IPVersion.V6)
        # Every v6-reachable pair is v4-reachable (v6 topology is a subgraph).
        v4_pairs = set(v4.candidates)
        for pair in v6.candidates:
            assert pair in v4_pairs

    def test_jitter_changes_only_order(self, tiny):
        plain = compute_route_table(tiny)
        jittered = compute_route_table(tiny, rng=np.random.default_rng(5))
        for pair, candidates in plain.candidates.items():
            assert {c.path for c in candidates} == {
                c.path for c in jittered.candidates[pair]
            }


class TestScopedAndParallel:
    def test_scoped_table_is_exact_slice_of_full(self, graph):
        full = compute_route_table(graph, IPVersion.V4, rng=np.random.default_rng(7))
        asns = graph.asns()
        sources, destinations = asns[:6], asns[3:9]
        scoped = compute_route_table(
            graph, IPVersion.V4, sources=sources, destinations=destinations,
            rng=np.random.default_rng(7),
        )
        expected = {
            pair: candidates
            for pair, candidates in full.candidates.items()
            if pair[0] in sources and pair[1] in destinations
        }
        assert scoped.candidates == expected
        assert expected  # the slice is non-trivial

    def test_scoped_table_without_jitter(self, tiny):
        full = compute_route_table(tiny)
        scoped = compute_route_table(tiny, sources=[100], destinations=[200, 1])
        assert set(scoped.candidates) == {(100, 200), (100, 1)}
        for pair, candidates in scoped.candidates.items():
            assert candidates == full.candidates[pair]

    def test_parallel_table_matches_serial(self, graph):
        serial = compute_route_table(
            graph, IPVersion.V4, rng=np.random.default_rng(11), jobs=1
        )
        parallel = compute_route_table(
            graph, IPVersion.V4, rng=np.random.default_rng(11), jobs=4
        )
        assert parallel.candidates == serial.candidates

    def test_empty_scope_gives_empty_table(self, tiny):
        table = compute_route_table(tiny, sources=[], destinations=[])
        assert table.candidates == {}
