"""Tests for routing dynamics: outages, flaps, and path timelines."""

import numpy as np
import pytest

from repro.net.ip import IPVersion
from repro.routing.dynamics import (
    EdgeOutage,
    PairFlap,
    RoutingDynamicsConfig,
    build_routing_schedule,
    sample_edge_outages,
    sample_pair_flaps,
)
from repro.routing.policy import RouteClass
from repro.routing.table import CandidateRoute, RouteTable


def _two_path_table():
    """src 1 -> dst 3 via 2 (primary) or via 4 (alternate)."""
    table = RouteTable(version=IPVersion.V4)
    table.candidates[(1, 3)] = (
        CandidateRoute.make((1, 2, 3), RouteClass.CUSTOMER, 0),
        CandidateRoute.make((1, 4, 3), RouteClass.PEER, 1),
    )
    return table


class TestScheduleConstruction:
    def test_no_events_single_epoch(self):
        schedule = build_routing_schedule(_two_path_table(), [(1, 3)], 100.0, [])
        epochs = schedule.epochs((1, 3))
        assert len(epochs) == 1
        assert epochs[0].candidate_index == 0
        assert (epochs[0].start_hour, epochs[0].end_hour) == (0.0, 100.0)

    def test_outage_switches_and_restores(self):
        outage = EdgeOutage(edge=(1, 2), start_hour=10.0, end_hour=20.0)
        schedule = build_routing_schedule(_two_path_table(), [(1, 3)], 100.0, [outage])
        epochs = schedule.epochs((1, 3))
        assert [epoch.candidate_index for epoch in epochs] == [0, 1, 0]
        assert schedule.candidate_at((1, 3), 15.0) == 1
        assert schedule.candidate_at((1, 3), 25.0) == 0
        assert schedule.change_count((1, 3)) == 2

    def test_outage_on_shared_edge_makes_unreachable(self):
        # Both candidates use edge (3, x) at the destination side?  Use an
        # outage hitting both paths' distinct edges simultaneously.
        outages = [
            EdgeOutage(edge=(1, 2), start_hour=10.0, end_hour=20.0),
            EdgeOutage(edge=(1, 4), start_hour=12.0, end_hour=18.0),
        ]
        schedule = build_routing_schedule(_two_path_table(), [(1, 3)], 100.0, outages)
        assert schedule.candidate_at((1, 3), 15.0) == -1
        assert schedule.candidate_at((1, 3), 19.0) == 1

    def test_irrelevant_outage_ignored(self):
        outage = EdgeOutage(edge=(77, 88), start_hour=10.0, end_hour=20.0)
        schedule = build_routing_schedule(_two_path_table(), [(1, 3)], 100.0, [outage])
        assert len(schedule.epochs((1, 3))) == 1

    def test_flap_demotes_primary(self):
        flap = PairFlap(pair=(1, 3), start_hour=30.0, end_hour=40.0)
        schedule = build_routing_schedule(
            _two_path_table(), [(1, 3)], 100.0, [], flaps=[flap]
        )
        assert schedule.candidate_at((1, 3), 35.0) == 1
        assert schedule.candidate_at((1, 3), 45.0) == 0

    def test_flap_with_single_candidate_keeps_primary(self):
        table = RouteTable(version=IPVersion.V4)
        table.candidates[(1, 3)] = (
            CandidateRoute.make((1, 2, 3), RouteClass.CUSTOMER, 0),
        )
        flap = PairFlap(pair=(1, 3), start_hour=30.0, end_hour=40.0)
        schedule = build_routing_schedule(table, [(1, 3)], 100.0, [], flaps=[flap])
        assert schedule.candidate_at((1, 3), 35.0) == 0

    def test_epochs_cover_window_exactly(self):
        outage = EdgeOutage(edge=(1, 2), start_hour=10.0, end_hour=20.0)
        schedule = build_routing_schedule(_two_path_table(), [(1, 3)], 100.0, [outage])
        epochs = schedule.epochs((1, 3))
        assert epochs[0].start_hour == 0.0
        assert epochs[-1].end_hour == 100.0
        for first, second in zip(epochs, epochs[1:]):
            assert first.end_hour == second.start_hour

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            build_routing_schedule(_two_path_table(), [(1, 3)], 0.0, [])


class TestTierOneAvailability:
    def test_tier1_candidate_requires_tier0_blocked(self):
        """A neighbor's fallback route is only visible while its steady-state
        route is down."""
        table = RouteTable(version=IPVersion.V4)
        table.candidates[(1, 3)] = (
            CandidateRoute.make((1, 2, 3), RouteClass.CUSTOMER, 0, tier=0),
            CandidateRoute.make((1, 2, 5, 3), RouteClass.CUSTOMER, 1, tier=1),
            CandidateRoute.make((1, 4, 3), RouteClass.PEER, 2, tier=0),
        )
        # Flap demotes the primary; the tier-1 via the same neighbor is NOT
        # available (neighbor 2 still advertises its primary), so selection
        # falls to the tier-0 peer route.
        flap = PairFlap(pair=(1, 3), start_hour=0.0, end_hour=50.0)
        schedule = build_routing_schedule(table, [(1, 3)], 100.0, [], flaps=[flap])
        assert schedule.candidate_at((1, 3), 10.0) == 2

        # An outage on edge (2, 3) blocks neighbor 2's primary; now the
        # tier-1 fallback via 2 becomes available and wins (it is ranked
        # ahead of the peer route).
        outage = EdgeOutage(edge=(2, 3), start_hour=0.0, end_hour=50.0)
        schedule = build_routing_schedule(table, [(1, 3)], 100.0, [outage])
        assert schedule.candidate_at((1, 3), 10.0) == 1


class TestSampling:
    def test_outage_sampling_deterministic(self, graph):
        first = sample_edge_outages(graph, 1000.0, rng=np.random.default_rng(3))
        second = sample_edge_outages(graph, 1000.0, rng=np.random.default_rng(3))
        assert first == second

    def test_outages_within_window(self, graph):
        outages = sample_edge_outages(graph, 500.0, rng=np.random.default_rng(4))
        for outage in outages:
            assert 0.0 <= outage.start_hour <= 500.0
            assert outage.start_hour <= outage.end_hour <= 500.0

    def test_outage_rate_scales_with_duration(self, graph):
        short = sample_edge_outages(graph, 24.0 * 30, rng=np.random.default_rng(5))
        long = sample_edge_outages(graph, 24.0 * 300, rng=np.random.default_rng(5))
        assert len(long) > len(short)

    def test_flap_sampling(self):
        pairs = [(1, 2), (3, 4)]
        flaps = sample_pair_flaps(pairs, 24.0 * 300, rng=np.random.default_rng(6))
        for flap in flaps:
            assert flap.pair in pairs
            assert 0.0 <= flap.start_hour <= flap.end_hour <= 24.0 * 300

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RoutingDynamicsConfig(mean_outages_per_edge_per_month=-1).validate()
        with pytest.raises(ValueError):
            RoutingDynamicsConfig(
                duration_mixture=((0.5, 6.0, 1.0),)
            ).validate()
