"""Tests for Gao-Rexford policy primitives."""

import pytest

from repro.net.asn import ASRelationship, RelationshipTable
from repro.routing.policy import RouteClass, export_allowed, is_valley_free, route_class


@pytest.fixture()
def table():
    # 1 is provider of 2 and 3; 2 and 3 peer; 3 is provider of 4.
    relationships = RelationshipTable()
    relationships.add(1, 2, ASRelationship.CUSTOMER)
    relationships.add(1, 3, ASRelationship.CUSTOMER)
    relationships.add(2, 3, ASRelationship.PEER)
    relationships.add(3, 4, ASRelationship.CUSTOMER)
    return relationships


class TestRouteClass:
    def test_preference_order(self):
        assert RouteClass.CUSTOMER > RouteClass.PEER > RouteClass.PROVIDER
        assert RouteClass.SELF > RouteClass.CUSTOMER

    def test_classification(self, table):
        assert route_class(table, 1, 2) is RouteClass.CUSTOMER
        assert route_class(table, 2, 1) is RouteClass.PROVIDER
        assert route_class(table, 2, 3) is RouteClass.PEER

    def test_unknown_pair_raises(self, table):
        with pytest.raises(ValueError):
            route_class(table, 1, 99)


class TestExportRules:
    def test_customer_routes_exported_to_everyone(self, table):
        # 3 learned a route from its customer 4: exports to provider 1 and peer 2.
        assert export_allowed(table, 3, 1, RouteClass.CUSTOMER)
        assert export_allowed(table, 3, 2, RouteClass.CUSTOMER)
        assert export_allowed(table, 3, 4, RouteClass.CUSTOMER)

    def test_self_routes_exported_to_everyone(self, table):
        assert export_allowed(table, 4, 3, RouteClass.SELF)

    def test_peer_routes_only_to_customers(self, table):
        # 3 learned a route from peer 2: exports only to customer 4.
        assert export_allowed(table, 3, 4, RouteClass.PEER)
        assert not export_allowed(table, 3, 1, RouteClass.PEER)
        assert not export_allowed(table, 3, 2, RouteClass.PEER)

    def test_provider_routes_only_to_customers(self, table):
        assert export_allowed(table, 3, 4, RouteClass.PROVIDER)
        assert not export_allowed(table, 3, 2, RouteClass.PROVIDER)


class TestValleyFree:
    def test_pure_uphill_downhill(self, table):
        assert is_valley_free(table, (4, 3, 1)) is True       # up, up
        assert is_valley_free(table, (1, 3, 4)) is True       # down, down
        assert is_valley_free(table, (2, 1, 3, 4)) is True    # up, down, down

    def test_one_peer_edge_allowed(self, table):
        assert is_valley_free(table, (2, 3, 4)) is True       # peer, down

    def test_valley_rejected(self, table):
        # Descend to a customer, then cross a peering edge: not valley-free.
        assert is_valley_free(table, (1, 2, 3)) is False
        # Climb, descend, then climb again: a literal valley.
        assert is_valley_free(table, (2, 1, 3, 4, 3)) is False
        # Up then down is fine.
        assert is_valley_free(table, (2, 1, 3)) is True

    def test_peer_after_descent_rejected(self, table):
        assert is_valley_free(table, (1, 3, 4)) is True
        assert is_valley_free(table, (4, 3, 2, 1)) is False   # up, peer, then up

    def test_two_peer_edges_rejected(self):
        relationships = RelationshipTable()
        relationships.add(1, 2, ASRelationship.PEER)
        relationships.add(2, 3, ASRelationship.PEER)
        assert is_valley_free(relationships, (1, 2, 3)) is False

    def test_unknown_relationship_returns_none(self, table):
        assert is_valley_free(table, (1, 99)) is None

    def test_single_as_path(self, table):
        assert is_valley_free(table, (1,)) is True
