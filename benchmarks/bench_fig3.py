"""Figure 3: prevalence of popular AS paths; route-change frequency.

Paper: the most popular path has >=50% prevalence for 80% of timelines;
18% (v4) / 16% (v6) of timelines see no change at all; ~90% see <=30
changes over 16 months.
"""

from repro.harness.experiments import experiment_fig3


def test_fig3(benchmark, longterm, emit):
    result = benchmark.pedantic(
        experiment_fig3, args=(longterm,), rounds=1, iterations=1
    )
    emit("fig3", result.render())

    dominant_v4 = result.metric("timelines with dominant path (prev>=50%) v4").measured
    no_change_v4 = result.metric("no-change timelines v4").measured
    p90_changes_v4 = result.metric("changes/timeline p90 v4").measured

    assert dominant_v4 >= 70.0       # paper: 80%
    assert 2.0 <= no_change_v4 <= 45.0
    assert p90_changes_v4 <= 120.0   # paper: 30; artifact noise widens ours
