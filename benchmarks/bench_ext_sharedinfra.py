"""Extension: IPv4/IPv6 infrastructure sharing (Section 8's question).

Again no paper numbers -- this is the study the authors propose.  The
qualitative signature under test: most dual-stack pairs share the dominant
AS path; on shared paths, routing changes synchronize across protocols and
the RTT series co-move far more than on divergent paths.
"""

import numpy as np

from repro.harness.experiments import experiment_sharedinfra


def test_ext_sharedinfra(benchmark, longterm, emit):
    result = benchmark.pedantic(
        experiment_sharedinfra, args=(longterm,), rounds=1, iterations=1
    )
    emit("ext_sharedinfra", result.render())

    agree = result.metric("dominant AS paths agree").measured
    synchronized = result.metric("median synchronized-change fraction").measured
    same = result.metric("median RTT correlation, same dominant path").measured
    different = result.metric(
        "median RTT correlation, different dominant path"
    ).measured

    assert agree >= 40.0
    assert np.isnan(synchronized) or synchronized >= 0.25
    if np.isfinite(same) and np.isfinite(different):
        assert same >= different
