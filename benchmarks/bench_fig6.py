"""Figure 6: prevalence of sub-optimal AS paths at 20/50/100 ms thresholds.

Paper: for 10% of v4 timelines, >=20 ms-worse paths persisted for >=30% of
the study; only ~1.1% (v4) / 1.3% (v6) of timelines had >=100 ms-worse
paths at >=20% / 40% prevalence -- i.e. big, long-lived routing damage is
rare.
"""

from repro.harness.experiments import experiment_fig6


def test_fig6(benchmark, longterm, emit):
    result = benchmark.pedantic(
        experiment_fig6, args=(longterm,), rounds=1, iterations=1
    )
    emit("fig6", result.render())

    mild_v4 = result.metric(
        "timelines with >= 20ms paths at prevalence >= 0.3 v4"
    ).measured
    severe_v4 = result.metric(
        "timelines with >= 100ms paths at prevalence >= 0.2 v4"
    ).measured

    assert severe_v4 <= mild_v4      # ordering must hold by construction
    assert severe_v4 <= 12.0         # paper: 1.1% -- rare
    assert mild_v4 <= 40.0           # paper: 10%
