"""Extension: packet loss follows congestion (Section 8's follow-up).

No paper numbers exist for this (it is the study the conclusion proposes);
the bench asserts the qualitative signature instead: loss is rare overall,
busy-hour-concentrated loss is a small minority of pairs, and on those
pairs the hourly loss rate tracks the hourly RTT.
"""

from repro.harness.experiments import experiment_loss


def test_ext_loss(benchmark, pings, emit):
    result = benchmark.pedantic(
        experiment_loss, args=(pings,), rounds=1, iterations=1
    )
    emit("ext_loss", result.render())

    median_loss = result.metric("median loss rate v4").measured
    diurnal = result.metric("pairs with busy-hour loss v4").measured
    correlation = result.metric(
        "loss/RTT correlation on those pairs v4"
    ).measured

    assert median_loss <= 2.0          # loss stays rare on core paths
    assert diurnal <= 25.0             # a minority, like RTT congestion
    assert correlation >= 0.15         # loss tracks the RTT busy hours
