"""Figure 2: unique AS paths per timeline; AS-path pairs per server pair.

Paper: 80% of trace timelines have <=5 (v4) / <=6 (v6) AS paths over 16
months; 18% / 16% have exactly one; pairing directions, 80% of server
pairs have <=8 / <=9 path pairs.
"""

from repro.harness.experiments import experiment_fig2


def test_fig2(benchmark, longterm, emit):
    result = benchmark.pedantic(
        experiment_fig2, args=(longterm,), rounds=1, iterations=1
    )
    emit("fig2", result.render())

    p80_v4 = result.metric("paths/timeline p80 v4").measured
    p80_pairs_v4 = result.metric("AS-path pairs/server pair p80 v4").measured
    single_v4 = result.metric("single-path timelines v4").measured

    assert 1 <= p80_v4 <= 8          # paper: 5
    assert p80_pairs_v4 >= p80_v4    # pairing directions only adds diversity
    assert 2.0 <= single_v4 <= 45.0  # paper: 18%
