"""Figure 9: density of the congestion overhead.

Paper: typical overhead 20-30 ms (>=60% of density for both internal and
interconnection links; ~90% for US-US pairs), rising to ~60 ms on
transcontinental links.
"""

from repro.harness.experiments import experiment_fig9


def test_fig9(benchmark, rich_traces, rich_platform, emit):
    result = benchmark.pedantic(
        experiment_fig9, args=(rich_traces, rich_platform), rounds=1, iterations=1
    )
    emit("fig9", result.render())

    median = result.metric("typical congestion overhead (median)").measured
    band = result.metric("share of overheads in 20-30ms band").measured

    assert 15.0 <= median <= 50.0    # paper: 20-30 ms typical
    assert band >= 25.0              # paper: >=60% of density
