"""Figure 7: 30-minute vs 3-hour-subsampled RTT-increase ECDFs.

Paper: the two ECDFs nearly coincide, so the long-term campaign's 3-hour
cadence does not distort the Section 4 analysis.
"""

from repro.harness.experiments import experiment_fig7


def test_fig7(benchmark, platform, emit):
    result = benchmark.pedantic(
        experiment_fig7, args=(platform,), kwargs={"days": 22.0},
        rounds=1, iterations=1,
    )
    emit("fig7", result.render())

    # The ECDFs should nearly coincide: small KS distances, small median
    # gaps (the paper's "difference ... is very small").
    for metric in result.metrics:
        if metric.name.startswith("KS distance"):
            assert metric.measured <= 0.25, metric.name
        else:
            assert metric.measured <= 25.0, metric.name
