"""Ablation: the best-path criterion (10th percentile vs alternatives).

The paper uses the 10th RTT percentile as the "baseline" and notes results
with the 90th percentile and standard deviation.  This bench compares how
often each criterion picks the same best path, and how the implied RTT
increases differ.
"""


from repro.core.rttstats import best_path_id, path_rtt_std
from repro.harness.report import render_table
from repro.net.ip import IPVersion


def test_best_path_criteria_agreement(benchmark, longterm, emit):
    timelines = [
        timeline
        for timeline in longterm.by_version(IPVersion.V4)
        if len(timeline.observed_paths()) >= 2
    ]

    def compare():
        agree_median = agree_p90 = agree_std = total = 0
        for timeline in timelines:
            by_p10 = best_path_id(timeline, q=10.0)
            if by_p10 is None:
                continue
            by_median = best_path_id(timeline, q=50.0)
            by_p90 = best_path_id(timeline, q=90.0)
            stds = path_rtt_std(timeline)
            by_std = min(stds, key=lambda pid: (stds[pid], pid)) if stds else None
            total += 1
            agree_median += by_p10 == by_median
            agree_p90 += by_p10 == by_p90
            agree_std += by_p10 == by_std
        return total, agree_median, agree_p90, agree_std

    total, agree_median, agree_p90, agree_std = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert total > 0
    rows = [
        ("median (50th pct)", f"{100 * agree_median / total:.1f}%"),
        ("90th percentile", f"{100 * agree_p90 / total:.1f}%"),
        ("lowest std dev", f"{100 * agree_std / total:.1f}%"),
    ]
    emit(
        "ablation_baseline",
        f"best-path agreement with the 10th-percentile criterion "
        f"(n={total} multi-path timelines):\n"
        + render_table(("criterion", "agreement"), rows),
    )
    # Baseline criteria largely agree: level shifts dominate percentile
    # choice (the paper's standard-deviation remark points the same way).
    assert agree_median / total >= 0.8
    assert agree_p90 / total >= 0.6
