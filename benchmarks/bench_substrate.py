"""Performance benchmarks of the substrate primitives.

These are the hot paths of dataset generation: longest-prefix matching,
path-vector route computation, vectorized RTT series sampling, and the
FFT detector.  They are micro-benchmarks (pytest-benchmark timings), with
light sanity assertions.
"""

import numpy as np

from repro.core.congestion import diurnal_power_ratio
from repro.net.ip import IPAddress, IPVersion
from repro.routing.bgp import compute_best_routes
from repro.topology.generator import TopologyConfig, generate_topology


def test_bench_prefix_lpm(benchmark, platform):
    plan = platform.plan
    addresses = [
        IPAddress.v4(int(value))
        for value in np.random.default_rng(1).integers(
            16 << 24, 32 << 24, size=2000
        )
    ]

    def lookup_all():
        return sum(1 for address in addresses if plan.origin(address) is not None)

    hits = benchmark(lookup_all)
    assert hits > 0


def test_bench_bgp_single_destination(benchmark, platform):
    destination = platform.graph.asns()[-1]

    def compute():
        return compute_best_routes(platform.graph, destination)

    best = benchmark(compute)
    assert len(best) > 100


def test_bench_topology_generation(benchmark):
    def build():
        return generate_topology(TopologyConfig(), rng=np.random.default_rng(5))

    graph = benchmark(build)
    assert len(graph.ases) == 173


def test_bench_rtt_series(benchmark, platform):
    src, dst = platform.server_pairs()[0]
    realization = platform.realization(src, dst, IPVersion.V4, 0)
    times = np.arange(0.0, 24.0 * 485, 3.0)

    def sample():
        return platform.delay_model.rtt_series(
            realization, times, platform.rng("bench-series"), platform.congestion
        )

    series = benchmark(sample)
    assert series.size == times.size


def test_bench_traceroute_series(benchmark, platform):
    src, dst = platform.server_pairs()[0]
    realization = platform.realization(src, dst, IPVersion.V4, 0)
    times = np.arange(0.0, 24.0 * 485, 3.0)

    def sample():
        return platform.engine.sample_series(
            realization, times, platform.rng("bench-traces")
        )

    series = benchmark(sample)
    assert series.outcome.size == times.size


def test_bench_fft_detector(benchmark):
    times = np.arange(0.0, 24.0 * 7, 0.25)
    rng = np.random.default_rng(2)
    signal = 50.0 + 20.0 * np.maximum(0, np.sin(2 * np.pi * times / 24.0))
    signal += rng.normal(0, 1, times.size)

    ratio = benchmark(diurnal_power_ratio, times, signal)
    assert ratio > 0.3
