"""Ablation: classic vs Paris traceroute loop-artifact rates.

The paper switched IPv4 to Paris traceroute in November 2014 precisely to
kill load-balancing loop artifacts; IPv6 stayed on classic and kept its
5.5% loop rate.  The bench measures both engines over the same paths.
"""

import numpy as np

from repro.harness.report import render_table
from repro.measurement.traceroute import TraceOutcome
from repro.net.ip import IPVersion


def test_paris_vs_classic_loop_rate(benchmark, platform, emit):
    pairs = platform.server_pairs()[:150]
    times = np.arange(0.0, 24.0 * 30, 3.0)

    def measure():
        results = {}
        for label, paris_start in (("classic", None), ("paris", 0.0)):
            loops = reached = 0
            for index, (src, dst) in enumerate(pairs):
                realization = platform.realization(src, dst, IPVersion.V4, 0)
                if realization is None:
                    continue
                series = platform.engine.sample_series(
                    realization, times, platform.rng("ablation-paris", label, index),
                    paris_start_hour=paris_start,
                )
                loops += int((series.outcome == int(TraceOutcome.LOOP)).sum())
                reached += int(
                    (series.outcome != int(TraceOutcome.INCOMPLETE)).sum()
                )
            results[label] = loops / reached if reached else float("nan")
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [(label, f"{100 * rate:.2f}%") for label, rate in results.items()]
    emit(
        "ablation_paris",
        "AS-loop rate by traceroute flavor (paper: 2.16% v4 mixed-era, "
        "5.5% v6 classic-only):\n" + render_table(("flavor", "loop rate"), rows),
    )
    assert results["paris"] < results["classic"]
    assert results["paris"] < 0.005
    assert 0.005 <= results["classic"] <= 0.10
