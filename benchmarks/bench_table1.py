"""Table 1: traceroute completeness summary.

Paper rows (share of traceroutes that reached their destination):

===================  ======  ======
row                  IPv4    IPv6
===================  ======  ======
complete AS-level    70.30%  64.03%
missing AS-level      1.58%   3.32%
missing IP-level     28.12%  32.65%
===================  ======  ======

plus AS-loop rates of 2.16% / 5.5% and ~75% of collected traceroutes
reaching their destination.
"""

from repro.harness.experiments import experiment_table1


def test_table1(benchmark, longterm, emit):
    result = benchmark.pedantic(
        experiment_table1, args=(longterm,), rounds=3, iterations=1
    )
    emit("table1", result.render())

    # Shape assertions: same ordering and rough magnitudes as the paper.
    complete_v4 = result.metric("complete AS-level v4").measured
    complete_v6 = result.metric("complete AS-level v6").measured
    missing_ip_v4 = result.metric("missing IP-level v4").measured
    loops_v4 = result.metric("AS-loop rate v4").measured
    loops_v6 = result.metric("AS-loop rate v6").measured
    reached = result.metric("reached destination (all)").measured

    assert 50.0 <= complete_v4 <= 85.0
    assert 45.0 <= complete_v6 <= 85.0
    assert 15.0 <= missing_ip_v4 <= 45.0
    assert loops_v4 <= 6.0
    assert loops_v6 >= loops_v4  # IPv6 stays on classic traceroute
    assert 65.0 <= reached <= 85.0
