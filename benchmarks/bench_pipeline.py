"""End-to-end pipeline benchmark: serial vs parallel vs warm cache vs stream.

Runs the dataset-generation pipeline four times, each phase in its own
subprocess so ``resource.getrusage`` peak-RSS readings are per-phase
(``ru_maxrss`` is a process-lifetime high-water mark and never resets):

1. ``serial``    -- jobs=1, cold cache (populates it), all experiments.
2. ``parallel``  -- jobs=N, its own cold cache directory.
3. ``warm``      -- jobs=1, reusing the serial phase's cache, so platform
   and long-term construction are skipped entirely.
4. ``stream``    -- the bounded-memory streaming engine serving its four
   experiments (fig3, fig6, congestion-norm, localization) without ever
   materializing a dataset; its peak RSS against serial's is the
   headline memory number.
5. ``service``   -- the campaign service's scale proof: a sharded
   synthetic mesh campaign (``--mesh-pairs`` pairs, default one
   million) streamed end-to-end through the incremental mesh operator,
   reporting steady-state ingest rate, merge-lag p99 (units buffered in
   shard queues but not yet consumed) and peak RSS.
6. ``faults``    -- the fault plane's cost: the same mesh campaign run
   unsupervised (baseline), supervised with zero faults (the recovery
   machinery's overhead, which perf_guard bounds), and in degraded mode
   with one of four shards quarantined by an injected crash loop
   (throughput and coverage with a shard down).

Writes machine-readable per-stage timings to a JSON file (default
``benchmarks/output/pipeline_timings.json``) plus a stable-schema
summary at the repo root (``BENCH_pipeline.json``) that tracking tools
can diff across commits.  Parallel output is bit-identical to serial,
so phases differ only in wall time.

Standalone on purpose -- this measures the pipeline itself, not one
experiment, so it does not use the pytest-benchmark harness the
per-figure benches share::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --scenario small --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.engine import ArtifactCache, Timings, cached_longterm, cached_platform
from repro.harness.experiments import run_all_experiments
from repro.harness.scenarios import congested_pairs, get_scenario
from repro.datasets.shortterm import (
    build_shortterm_ping_dataset,
    build_shortterm_trace_dataset,
)

SUMMARY_SCHEMA = 5


def _peak_rss_bytes(who: int = resource.RUSAGE_SELF) -> int:
    """This process's (or its children's) peak resident set, in bytes.

    Linux reports ``ru_maxrss`` in KiB, macOS in bytes.
    """
    raw = resource.getrusage(who).ru_maxrss
    return int(raw) if sys.platform == "darwin" else int(raw) * 1024


def run_phase(
    scenario_name: str,
    seed: int,
    jobs: int,
    cache_dir: Path,
) -> dict:
    """One full batch pipeline pass; returns its timing record."""
    scenario = get_scenario(scenario_name)
    cache = ArtifactCache(cache_dir)
    timings = Timings()
    started = time.perf_counter()

    platform_config = scenario.platform_config(seed)
    platform, platform_hit = cached_platform(
        platform_config, cache=cache, jobs=jobs, timings=timings
    )
    longterm, longterm_hit = cached_longterm(
        platform_config,
        scenario.longterm_config(),
        platform=platform,
        cache=cache,
        jobs=jobs,
        timings=timings,
    )
    with timings.stage("ping-build"):
        pings = build_shortterm_ping_dataset(
            platform, scenario.shortterm_config(), jobs=jobs
        )
    with timings.stage("shorttrace-build"):
        traces = build_shortterm_trace_dataset(
            platform,
            congested_pairs(platform, pings),
            scenario.shortterm_config(),
            jobs=jobs,
        )
    results = run_all_experiments(
        platform, longterm, pings, traces, include_fig7=False,
        jobs=jobs, timings=timings,
    )
    wall = time.perf_counter() - started

    return {
        "jobs": jobs,
        "cache_hit": {"platform": platform_hit, "longterm": longterm_hit},
        "wall_seconds": wall,
        "stage_seconds": timings.as_dict(),
        "stages": timings.as_records(),
        "experiments": len(results),
        "longterm_timelines": len(longterm.timelines),
        "ping_timelines": len(pings.timelines),
        "trace_entries": len(traces.entries),
    }


def run_stream_phase(scenario_name: str, seed: int) -> dict:
    """One streaming-engine pass (serial shards, no dataset, no cache)."""
    from repro.measurement.platform import MeasurementPlatform
    from repro.stream.engine import StreamEngine

    scenario = get_scenario(scenario_name)
    timings = Timings()
    started = time.perf_counter()

    with timings.stage("platform-build"):
        platform = MeasurementPlatform(scenario.platform_config(seed))
    engine = StreamEngine(
        platform,
        longterm_config=scenario.longterm_config(),
        shortterm_config=scenario.shortterm_config(),
    )
    with timings.stage("stream-run"):
        results = engine.run()
    wall = time.perf_counter() - started

    return {
        "jobs": 1,
        "cache_hit": {},
        "wall_seconds": wall,
        "stage_seconds": timings.as_dict(),
        "stages": timings.as_records(),
        "experiments": len(results),
    }


def _histogram_percentile(stats: dict, q: float) -> float:
    """A percentile from a registry histogram snapshot's bucket counts.

    Returns the smallest bucket bound whose cumulative count reaches the
    quantile (the overflow bucket reports the largest bound).
    """
    counts = stats.get("counts") or []
    bounds = stats.get("bounds") or []
    total = sum(counts)
    if not total or not bounds:
        return 0.0
    target = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= target:
            return float(bounds[min(index, len(bounds) - 1)])
    return float(bounds[-1])


def run_service_phase(seed: int, shards: int, mesh_pairs: int) -> dict:
    """One steady-state campaign-service pass over the synthetic mesh.

    Drives the mesh campaign exactly as ``repro service run`` would (the
    sharded source, the incremental operator, periodic checkpoints) but
    back-to-back with no cadence sleeps, so the wall time is pure ingest.
    """
    from repro.obs import metrics as obs_metrics
    from repro.service.campaign import Campaign, driver_for
    from repro.service.config import CampaignConfig
    from repro.stream.mesh import MeshConfig

    registry = obs_metrics.get_registry()
    registry.reset()
    timings = Timings()
    started = time.perf_counter()
    config = CampaignConfig(
        name="bench-mesh",
        kind="mesh",
        cycles=2,
        rounds_per_cycle=8,
        shards=shards,
        queue_units=4,
        checkpoint_every=256,
        mesh=MeshConfig(pairs=mesh_pairs, seed=seed),
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as state:
        campaign = Campaign(config, driver_for(config), Path(state))
        with timings.stage("service-ingest"):
            while campaign.run_cycle() == "completed":
                pass
    wall = time.perf_counter() - started
    ingest_seconds = timings.as_dict()["service-ingest"]

    snapshot = registry.snapshot()
    lag = snapshot["histograms"].get("stream.merge_lag_units", {})
    samples = int(campaign.results["samples"])
    return {
        "jobs": shards,
        "cache_hit": {},
        "wall_seconds": wall,
        "stage_seconds": timings.as_dict(),
        "stages": timings.as_records(),
        "mesh_pairs": mesh_pairs,
        "samples": samples,
        "ingest_rate_per_s": samples / max(ingest_seconds, 1e-9),
        "merge_lag_p99_units": _histogram_percentile(lag, 0.99),
    }


def run_faults_phase(seed: int, mesh_pairs: int) -> dict:
    """The fault plane's cost: supervised overhead and degraded throughput.

    Three back-to-back mesh campaign runs over a quarter-size mesh (the
    phase runs the campaign three times): unsupervised baseline,
    supervised with zero faults (their rate gap is
    ``overhead_fraction``, the recovery machinery's price when nothing
    goes wrong), and supervised under an injected crash loop that
    quarantines shard 3 of 4 immediately (degraded-mode throughput and
    the coverage the completeness accountant reports).
    """
    from repro.faults.plane import FaultsConfig, SupervisionPolicy, install, uninstall
    from repro.obs import metrics as obs_metrics
    from repro.service.campaign import Campaign, driver_for
    from repro.service.config import CampaignConfig
    from repro.stream.mesh import MeshConfig

    pairs = max(mesh_pairs // 4, 65536)
    shards = 4
    timings = Timings()
    started = time.perf_counter()

    def _run(label: str, supervision=None) -> Campaign:
        obs_metrics.get_registry().reset()
        config = CampaignConfig(
            name=f"faults-{label}",
            kind="mesh",
            cycles=1,
            rounds_per_cycle=8,
            shards=shards,
            queue_units=4,
            checkpoint_every=256,
            mesh=MeshConfig(pairs=pairs, seed=seed),
        )
        with tempfile.TemporaryDirectory(prefix="repro-bench-faults-") as state:
            campaign = Campaign(
                config, driver_for(config), Path(state),
                supervision=supervision,
            )
            with timings.stage(label):
                while campaign.run_cycle() == "completed":
                    pass
        return campaign

    def _rate(campaign: Campaign, label: str) -> float:
        return int(campaign.results["samples"]) / max(
            timings.as_dict()[label], 1e-9
        )

    policy = SupervisionPolicy()
    baseline_rate = _rate(_run("faults-baseline"), "faults-baseline")
    supervised_rate = _rate(
        _run("faults-supervised", supervision=policy), "faults-supervised"
    )
    # Crash unit 3 (shard 3's first unit) on every attempt; with no
    # restart budget the shard quarantines immediately and the campaign
    # finishes on three of four shards.
    install(FaultsConfig(seed=seed, crash_units=(3,), crash_repeats=99))
    try:
        degraded = _run(
            "faults-degraded",
            supervision=SupervisionPolicy(max_restarts=0),
        )
    finally:
        uninstall()
    degraded_rate = _rate(degraded, "faults-degraded")
    completeness = degraded.results["completeness"]
    wall = time.perf_counter() - started

    return {
        "jobs": shards,
        "cache_hit": {},
        "wall_seconds": wall,
        "stage_seconds": timings.as_dict(),
        "stages": timings.as_records(),
        "mesh_pairs": pairs,
        "baseline_rate_per_s": baseline_rate,
        "supervised_rate_per_s": supervised_rate,
        "overhead_fraction": max(0.0, 1.0 - supervised_rate / baseline_rate),
        "degraded_rate_per_s": degraded_rate,
        "degraded_coverage": completeness["coverage"],
        "degraded_units_missing": len(completeness["missing"]),
        "quarantined_shards": 1,
    }


def _child_main(args: argparse.Namespace) -> int:
    """``--run-phase`` entry: run one phase, print its record as JSON."""
    if args.run_phase == "stream":
        record = run_stream_phase(args.scenario, args.seed)
    elif args.run_phase == "service":
        record = run_service_phase(args.seed, args.jobs, args.mesh_pairs)
    elif args.run_phase == "faults":
        record = run_faults_phase(args.seed, args.mesh_pairs)
    else:
        record = run_phase(
            args.scenario, args.seed, jobs=args.jobs, cache_dir=Path(args.cache_dir)
        )
    record["peak_rss_bytes"] = _peak_rss_bytes()
    record["peak_rss_children_bytes"] = _peak_rss_bytes(resource.RUSAGE_CHILDREN)
    print(json.dumps(record))
    return 0


def _run_phase_subprocess(
    name: str, scenario: str, seed: int, jobs: int, cache_dir: Path,
    mesh_pairs: int = 0,
) -> dict:
    """Launch one phase in a fresh interpreter and parse its JSON record."""
    argv = [
        sys.executable, __file__,
        "--run-phase", name,
        "--scenario", scenario,
        "--seed", str(seed),
        "--jobs", str(jobs),
        "--cache-dir", str(cache_dir),
        "--mesh-pairs", str(mesh_pairs),
    ]
    proc = subprocess.run(argv, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"phase {name!r} failed with exit {proc.returncode}")
    # The record is the last stdout line; anything above it is phase noise.
    return json.loads(proc.stdout.strip().splitlines()[-1])


def build_summary(
    report: dict, parallel_jobs: int, previous: dict = None
) -> dict:
    """The stable-schema repo-root summary (``BENCH_pipeline.json``).

    Schema version 5: version 4's per-phase wall time, flat
    stage -> seconds map, ``peak_rss_mb``, ``memory`` section, the
    comparative extras (``speedup.columnar``, ``stage_seconds_delta``)
    and the ``service`` scale-proof section, plus a ``faults`` section
    with the fault plane's cost figures: the supervised zero-fault
    overhead fraction (perf_guard bounds it) and degraded-mode
    throughput/coverage with one of four shards quarantined.
    """
    comparable = (
        isinstance(previous, dict)
        and previous.get("benchmark") == "pipeline"
        and previous.get("scenario") == report["scenario"]
        and isinstance(previous.get("phases"), dict)
    )
    phases = {}
    for phase_name, phase in report["phases"].items():
        entry = {
            "wall_seconds": round(phase["wall_seconds"], 3),
            "peak_rss_mb": round(phase["peak_rss_bytes"] / 1e6, 1),
            "stage_seconds": {
                stage: round(seconds, 3)
                for stage, seconds in sorted(phase["stage_seconds"].items())
            },
        }
        if comparable:
            before = previous["phases"].get(phase_name, {}).get(
                "stage_seconds", {}
            )
            entry["stage_seconds_delta"] = {
                stage: round(seconds - before[stage], 3)
                for stage, seconds in sorted(phase["stage_seconds"].items())
                if stage in before
            }
        phases[phase_name] = entry
    speedup = {name: round(value, 2) for name, value in report["speedup"].items()}
    if comparable:
        before_serial = previous["phases"].get("serial", {}).get("wall_seconds")
        if before_serial:
            speedup["columnar"] = round(
                before_serial
                / max(report["phases"]["serial"]["wall_seconds"], 1e-9),
                2,
            )
    summary = {
        "schema": SUMMARY_SCHEMA,
        "benchmark": "pipeline",
        "scenario": report["scenario"],
        "seed": report["seed"],
        "parallel_jobs": parallel_jobs,
        "cpu_count": report["cpu_count"],
        "phases": phases,
        "speedup": speedup,
        "memory": {
            name: round(value, 3) for name, value in report["memory"].items()
        },
    }
    service = report["phases"].get("service")
    if service is not None:
        summary["service"] = {
            "mesh_pairs": service["mesh_pairs"],
            "shards": service["jobs"],
            "samples": service["samples"],
            "ingest_rate_per_s": round(service["ingest_rate_per_s"], 1),
            "merge_lag_p99_units": service["merge_lag_p99_units"],
            "peak_rss_mb": round(service["peak_rss_bytes"] / 1e6, 1),
        }
    faults = report["phases"].get("faults")
    if faults is not None:
        summary["faults"] = {
            "mesh_pairs": faults["mesh_pairs"],
            "shards": faults["jobs"],
            "baseline_rate_per_s": round(faults["baseline_rate_per_s"], 1),
            "supervised_rate_per_s": round(faults["supervised_rate_per_s"], 1),
            "overhead_fraction": round(faults["overhead_fraction"], 4),
            "degraded_rate_per_s": round(faults["degraded_rate_per_s"], 1),
            "degraded_coverage": round(faults["degraded_coverage"], 4),
            "quarantined_shards": faults["quarantined_shards"],
        }
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="small",
                        help="scenario scale (default: small)")
    parser.add_argument("--seed", type=int, default=0, help="world seed")
    parser.add_argument("--jobs", type=int, default=0,
                        help="workers for the parallel phase "
                             "(0 = all cores; default: 0)")
    parser.add_argument("--mesh-pairs", type=int, default=1_000_000,
                        help="mesh size for the service phase "
                             "(default: 1000000)")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent / "output" / "pipeline_timings.json"),
        help="where to write the JSON timing report",
    )
    parser.add_argument(
        "--summary",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"),
        help="where to write the stable-schema summary "
             "(empty string disables it)",
    )
    parser.add_argument("--run-phase", default=None, metavar="NAME",
                        help=argparse.SUPPRESS)  # internal: child-process mode
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help=argparse.SUPPRESS)  # internal: child-process mode
    args = parser.parse_args(argv)

    if args.run_phase:
        return _child_main(args)

    parallel_jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    report = {
        "benchmark": "pipeline",
        "scenario": args.scenario,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "phases": {},
    }

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        serial_cache = Path(tmp) / "serial"
        parallel_cache = Path(tmp) / "parallel"

        plan = [
            ("serial", 1, serial_cache, "jobs=1, cold cache"),
            ("parallel", parallel_jobs, parallel_cache,
             f"jobs={parallel_jobs}, cold cache"),
            ("warm", 1, serial_cache, "jobs=1, reusing serial cache"),
            ("stream", 1, serial_cache, "streaming engine, no dataset"),
            ("service", 2, serial_cache,
             f"campaign service, {args.mesh_pairs:,}-pair mesh"),
            ("faults", 4, serial_cache,
             "fault plane: supervised overhead + degraded mode"),
        ]
        for step, (name, jobs, cache_dir, blurb) in enumerate(plan, start=1):
            print(f"[{step}/{len(plan)}] {name:<8} ({blurb})", flush=True)
            record = _run_phase_subprocess(
                name, args.scenario, args.seed, jobs, cache_dir,
                mesh_pairs=args.mesh_pairs,
            )
            report["phases"][name] = record
            print(f"      {record['wall_seconds']:.2f}s, "
                  f"peak RSS {record['peak_rss_bytes'] / 1e6:.0f} MB", flush=True)

    serial = report["phases"]["serial"]["wall_seconds"]
    report["speedup"] = {
        "parallel": serial / max(report["phases"]["parallel"]["wall_seconds"], 1e-9),
        "warm": serial / max(report["phases"]["warm"]["wall_seconds"], 1e-9),
    }
    report["memory"] = {
        "stream_vs_serial_rss": (
            report["phases"]["stream"]["peak_rss_bytes"]
            / max(report["phases"]["serial"]["peak_rss_bytes"], 1)
        ),
        "service_vs_serial_rss": (
            report["phases"]["service"]["peak_rss_bytes"]
            / max(report["phases"]["serial"]["peak_rss_bytes"], 1)
        ),
    }
    assert report["phases"]["warm"]["cache_hit"] == {
        "platform": True, "longterm": True,
    }, "warm phase should hit the cache for both artifacts"

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nspeedup: parallel x{report['speedup']['parallel']:.2f}, "
          f"warm x{report['speedup']['warm']:.2f}")
    print(f"stream peak RSS: "
          f"{report['memory']['stream_vs_serial_rss']:.1%} of serial")
    service = report["phases"]["service"]
    print(f"service ingest: {service['ingest_rate_per_s']:,.0f} samples/s "
          f"over {service['mesh_pairs']:,} pairs, "
          f"merge-lag p99 {service['merge_lag_p99_units']:g} units, "
          f"peak RSS {report['memory']['service_vs_serial_rss']:.1%} of serial")
    faults = report["phases"]["faults"]
    print(f"faults: supervision overhead {faults['overhead_fraction']:.1%}, "
          f"degraded {faults['degraded_rate_per_s']:,.0f} samples/s at "
          f"{faults['degraded_coverage']:.1%} coverage "
          f"({faults['quarantined_shards']}/{faults['jobs']} shards down)")
    print(f"wrote {output}")

    if args.summary:
        summary_path = Path(args.summary)
        previous = None
        if summary_path.exists():
            try:
                previous = json.loads(summary_path.read_text())
            except (OSError, ValueError):
                previous = None
        summary_path.write_text(
            json.dumps(build_summary(report, parallel_jobs, previous=previous),
                       indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {summary_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
