"""End-to-end pipeline benchmark: serial vs parallel vs warm cache.

Runs the full dataset-generation pipeline (platform, long-term dataset,
short-term pings and traces, all experiments) three times:

1. ``serial``    -- jobs=1, cold cache (populates it).
2. ``parallel``  -- jobs=N, its own cold cache directory.
3. ``warm``      -- jobs=1, reusing the serial phase's cache, so platform
   and long-term construction are skipped entirely.

Writes machine-readable per-stage timings to a JSON file (default
``benchmarks/output/pipeline_timings.json``) plus a stable-schema
summary at the repo root (``BENCH_pipeline.json``) that tracking tools
can diff across commits.  Parallel output is bit-identical to serial,
so phases differ only in wall time.

Standalone on purpose -- this measures the pipeline itself, not one
experiment, so it does not use the pytest-benchmark harness the
per-figure benches share::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --scenario small --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.engine import ArtifactCache, Timings, cached_longterm, cached_platform
from repro.harness.experiments import run_all_experiments
from repro.harness.scenarios import congested_pairs, get_scenario
from repro.datasets.shortterm import (
    build_shortterm_ping_dataset,
    build_shortterm_trace_dataset,
)


def run_phase(
    scenario_name: str,
    seed: int,
    jobs: int,
    cache_dir: Path,
) -> dict:
    """One full pipeline pass; returns its timing record."""
    scenario = get_scenario(scenario_name)
    cache = ArtifactCache(cache_dir)
    timings = Timings()
    started = time.perf_counter()

    platform_config = scenario.platform_config(seed)
    platform, platform_hit = cached_platform(
        platform_config, cache=cache, jobs=jobs, timings=timings
    )
    longterm, longterm_hit = cached_longterm(
        platform_config,
        scenario.longterm_config(),
        platform=platform,
        cache=cache,
        jobs=jobs,
        timings=timings,
    )
    with timings.stage("ping-build"):
        pings = build_shortterm_ping_dataset(
            platform, scenario.shortterm_config(), jobs=jobs
        )
    with timings.stage("shorttrace-build"):
        traces = build_shortterm_trace_dataset(
            platform,
            congested_pairs(platform, pings),
            scenario.shortterm_config(),
            jobs=jobs,
        )
    results = run_all_experiments(
        platform, longterm, pings, traces, include_fig7=False,
        jobs=jobs, timings=timings,
    )
    wall = time.perf_counter() - started

    return {
        "jobs": jobs,
        "cache_hit": {"platform": platform_hit, "longterm": longterm_hit},
        "wall_seconds": wall,
        "stage_seconds": timings.as_dict(),
        "stages": timings.as_records(),
        "experiments": len(results),
        "longterm_timelines": len(longterm.timelines),
        "ping_timelines": len(pings.timelines),
        "trace_entries": len(traces.entries),
    }


def build_summary(report: dict, parallel_jobs: int) -> dict:
    """The stable-schema repo-root summary (``BENCH_pipeline.json``).

    Schema (version 1): top-level run parameters plus, per phase
    (serial/parallel/warm), its wall time and a flat stage -> seconds
    map.  Values are rounded so diffs stay readable.
    """
    phases = {}
    for phase_name, phase in report["phases"].items():
        phases[phase_name] = {
            "wall_seconds": round(phase["wall_seconds"], 3),
            "stage_seconds": {
                stage: round(seconds, 3)
                for stage, seconds in sorted(phase["stage_seconds"].items())
            },
        }
    return {
        "schema": 1,
        "benchmark": "pipeline",
        "scenario": report["scenario"],
        "seed": report["seed"],
        "parallel_jobs": parallel_jobs,
        "cpu_count": report["cpu_count"],
        "phases": phases,
        "speedup": {name: round(value, 2)
                    for name, value in report["speedup"].items()},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="small",
                        help="scenario scale (default: small)")
    parser.add_argument("--seed", type=int, default=0, help="world seed")
    parser.add_argument("--jobs", type=int, default=0,
                        help="workers for the parallel phase "
                             "(0 = all cores; default: 0)")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent / "output" / "pipeline_timings.json"),
        help="where to write the JSON timing report",
    )
    parser.add_argument(
        "--summary",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"),
        help="where to write the stable-schema summary "
             "(empty string disables it)",
    )
    args = parser.parse_args(argv)

    parallel_jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    report = {
        "benchmark": "pipeline",
        "scenario": args.scenario,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "phases": {},
    }

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        serial_cache = Path(tmp) / "serial"
        parallel_cache = Path(tmp) / "parallel"

        print(f"[1/3] serial   (jobs=1, cold cache)", flush=True)
        report["phases"]["serial"] = run_phase(
            args.scenario, args.seed, jobs=1, cache_dir=serial_cache
        )
        print(f"      {report['phases']['serial']['wall_seconds']:.2f}s", flush=True)

        print(f"[2/3] parallel (jobs={parallel_jobs}, cold cache)", flush=True)
        report["phases"]["parallel"] = run_phase(
            args.scenario, args.seed, jobs=parallel_jobs, cache_dir=parallel_cache
        )
        print(f"      {report['phases']['parallel']['wall_seconds']:.2f}s", flush=True)

        print(f"[3/3] warm     (jobs=1, reusing serial cache)", flush=True)
        report["phases"]["warm"] = run_phase(
            args.scenario, args.seed, jobs=1, cache_dir=serial_cache
        )
        print(f"      {report['phases']['warm']['wall_seconds']:.2f}s", flush=True)

    serial = report["phases"]["serial"]["wall_seconds"]
    report["speedup"] = {
        "parallel": serial / max(report["phases"]["parallel"]["wall_seconds"], 1e-9),
        "warm": serial / max(report["phases"]["warm"]["wall_seconds"], 1e-9),
    }
    assert report["phases"]["warm"]["cache_hit"] == {
        "platform": True, "longterm": True,
    }, "warm phase should hit the cache for both artifacts"

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nspeedup: parallel x{report['speedup']['parallel']:.2f}, "
          f"warm x{report['speedup']['warm']:.2f}")
    print(f"wrote {output}")

    if args.summary:
        summary_path = Path(args.summary)
        summary_path.write_text(
            json.dumps(build_summary(report, parallel_jobs), indent=2,
                       sort_keys=True) + "\n"
        )
        print(f"wrote {summary_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
