"""Ablation: drop-one analysis of the six ownership heuristics.

Measures, against the simulator's ground truth, how accuracy and coverage
change when each sequence heuristic's labels are discarded before
resolution.  The ``customer`` heuristic is the load-bearing one: it is what
re-assigns provider-addressed interconnect interfaces to their customer
routers.
"""

from collections import Counter

from repro.core.ownership import HopView, infer_ownership
from repro.harness.report import render_table
from repro.net.ip import IPVersion


def _paths(platform):
    paths = []
    for src, dst in platform.server_pairs():
        for version in (IPVersion.V4, IPVersion.V6):
            realization = platform.realization(src, dst, version, 0)
            if realization is None:
                continue
            paths.append(
                [HopView(hop.address, hop.mapped_asn) for hop in realization.hops]
            )
    return paths


def _score(platform, inference):
    checked = correct = 0
    for address in inference.labeled_addresses():
        owner = inference.owner(address)
        truth = platform.topology.interface_owner(address)
        if owner is None or truth is None:
            continue
        checked += 1
        correct += owner == truth
    return checked, correct


def test_drop_one_heuristics(benchmark, platform, emit):
    paths = _paths(platform)

    def run():
        rows = []
        full = infer_ownership(paths, platform.graph.relationships, passes=3)
        checked, correct = _score(platform, full)
        rows.append(("all six", checked, f"{100 * correct / checked:.1f}%"))
        for dropped in ("first", "noip2as", "customer", "provider"):
            variant = infer_ownership(paths, platform.graph.relationships, passes=3)
            for address in list(variant.labels):
                filtered = Counter(
                    {key: count for key, count in variant.labels[address].items()
                     if key[1] != dropped}
                )
                variant.labels[address] = filtered
            variant.owners.clear()
            variant.resolve()
            checked, correct = _score(platform, variant)
            accuracy = f"{100 * correct / checked:.1f}%" if checked else "n/a"
            rows.append((f"without {dropped!r}", checked, accuracy))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_ownership",
        "drop-one heuristic analysis (resolved interfaces, accuracy vs "
        "ground truth):\n" + render_table(("heuristic set", "resolved", "accuracy"), rows),
    )

    by_label = {row[0]: row for row in rows}
    full_resolved = by_label["all six"][1]
    # Dropping 'first' costs the most coverage (it anchors everything).
    assert by_label["without 'first'"][1] < full_resolved
    # Dropping 'customer' keeps coverage but the remaining labels put
    # provider-addressed interfaces on the wrong side of the boundary less
    # often than never -- accuracy must not *improve* without it.
    full_accuracy = float(by_label["all six"][2].rstrip("%"))
    assert full_accuracy >= 85.0
