"""Ablation: the Pearson-correlation threshold for localization (0.5).

Sweeps rho and scores, against ground truth, how often the located hop is
the first truly congested segment of the path.
"""

from repro.core.localization import localize_congestion
from repro.harness.report import render_table


def test_rho_threshold_sweep(benchmark, rich_traces, rich_platform, emit):
    congested = set(rich_platform.congestion.congested_keys())
    entries = [
        entry for entry in rich_traces.entries.values() if entry.static_path
    ]

    def sweep():
        rows = []
        for rho in (0.3, 0.4, 0.5, 0.6, 0.7, 0.8):
            located = correct = 0
            for entry in entries:
                result = localize_congestion(entry, rho_threshold=rho)
                if not result.located:
                    continue
                located += 1
                truly = [
                    index for index, key in enumerate(entry.segment_keys)
                    if key in congested
                ]
                if truly and truly[0] == result.congested_hop:
                    correct += 1
            accuracy = correct / located if located else float("nan")
            rows.append((rho, located, correct, f"{accuracy:.2f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_rho",
        "Pearson threshold sweep for localization (paper uses 0.5):\n"
        + render_table(("rho", "located", "exact hop", "accuracy"), rows),
    )

    by_rho = {row[0]: row for row in rows}
    assert by_rho[0.5][1] >= 10, "expected localizations at the paper's threshold"
    # Located counts shrink as the threshold tightens.
    counts = [row[1] for row in rows]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
