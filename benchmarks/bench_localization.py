"""Section 5.2: locating congestion via per-segment correlation.

Paper: for more than 30% of flagged pairs the diurnal signal persisted
weeks later; the first traceroute segment whose RTT series matches the
end-to-end pattern (Pearson rho >= 0.5) marks the congested link.  The
simulator additionally provides ground truth, so localization accuracy is
measured directly.
"""

from repro.harness.experiments import experiment_localization


def test_localization(benchmark, rich_traces, rich_platform, emit):
    result = benchmark.pedantic(
        experiment_localization, args=(rich_traces, rich_platform),
        rounds=1, iterations=1,
    )
    emit("localization", result.render())

    persistent = result.metric("pairs with persistent diurnal weeks later").measured
    located = result.metric("located pairs").measured
    accuracy = result.metric("localization accuracy vs ground truth").measured

    assert located >= 20
    assert persistent >= 15.0            # paper: >30%
    assert accuracy >= 50.0              # located = first truly congested hop
