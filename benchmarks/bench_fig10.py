"""Figure 10: IPv4 vs IPv6 -- paired RTT differences and RTT inflation.

Paper (10a): ~50% of paired traceroutes are within +/-10 ms; 3.7% of pairs
save >=50 ms by switching to IPv6, 8.5% by switching to IPv4 (IPv6 is worse
more often).  Paper (10b): median inflation over cRTT ~3.01 (v4) / 3.10
(v6); transcontinental pairs are *less* inflated than US-US pairs.
"""

from repro.harness.experiments import experiment_fig10a, experiment_fig10b


def test_fig10a(benchmark, longterm, emit):
    result = benchmark.pedantic(
        experiment_fig10a, args=(longterm,), rounds=1, iterations=1
    )
    emit("fig10a", result.render())

    band = result.metric("traceroutes with |RTTv4-RTTv6| <= 10ms").measured
    v6_saves = result.metric("pairs where IPv6 saves >= 50ms").measured
    v4_saves = result.metric("pairs where IPv4 saves >= 50ms").measured

    assert 35.0 <= band <= 95.0      # paper: ~50%
    assert v6_saves <= 20.0          # paper: 3.7% -- minority
    assert v4_saves <= 30.0          # paper: 8.5% -- minority
    # The asymmetry direction: IPv4 rescues more pairs than IPv6.
    assert v4_saves >= 0.5 * v6_saves


def test_fig10b(benchmark, longterm, emit):
    result = benchmark.pedantic(
        experiment_fig10b, args=(longterm,), rounds=1, iterations=1
    )
    emit("fig10b", result.render())

    median_v4 = result.metric("median inflation v4").measured
    median_v6 = result.metric("median inflation v6").measured
    us = result.metric("US-US median inflation v4").measured
    trans = result.metric("transcontinental median inflation v4").measured

    assert 2.0 <= median_v4 <= 6.0   # paper: 3.01
    assert 2.0 <= median_v6 <= 6.5   # paper: 3.10
    # The paper's grouping result: transcontinental pairs less inflated.
    assert trans < us
