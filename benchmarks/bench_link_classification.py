"""Section 5.3: classifying congested links by inferred router ownership.

Paper: 3155 congested IP-IP links -- 1768 internal, 1121 interconnection
(658 p2p + 463 c2p), 266 unknown; more internal links by count, but
interconnection links are more popular when weighted by crossing pairs;
the large majority of congested interconnects are private.
"""

from repro.harness.experiments import experiment_link_classification


def test_link_classification(benchmark, rich_traces, rich_platform, emit):
    result = benchmark.pedantic(
        experiment_link_classification, args=(rich_traces, rich_platform),
        rounds=1, iterations=1,
    )
    emit("link_classification", result.render())

    ratio = result.metric("internal/interconnection count ratio").measured
    private_share = result.metric("private share of congested interconnects").measured

    # Internal links outnumber interconnection links by count (paper: 1.58x),
    # and congested interconnects are overwhelmingly private.
    assert ratio >= 1.0
    assert private_share >= 60.0
