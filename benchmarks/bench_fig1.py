"""Figure 1: the illustrative pair -- level shifts and a diurnal window.

The paper's Hong Kong -> Osaka pair shows baseline level shifts of up to
~108 ms when the AS path changes, and a week-long window of daily RTT
oscillation.  The bench finds the scenario's most-shifted pair and checks
that level shifts of tens of milliseconds exist.
"""

from repro.harness.experiments import experiment_fig1


def test_fig1(benchmark, platform, longterm, emit):
    result = benchmark.pedantic(
        experiment_fig1, args=(platform, longterm), rounds=1, iterations=1
    )
    emit("fig1", result.render())

    shift = result.metric("largest level shift observed").measured
    assert shift >= 20.0, "expected visible routing level shifts"
