"""Figure 5: AS-path lifetime vs increase in 90th-percentile RTT.

Paper: same qualitative structure as Figure 4 at the spike-inclusive
percentile; 10% of paths see at least ~70 ms (v4) / ~80 ms (v6) extra.
"""

from repro.harness.experiments import experiment_fig5


def test_fig5(benchmark, longterm, emit):
    result = benchmark.pedantic(
        experiment_fig5, args=(longterm,), rounds=1, iterations=1
    )
    emit("fig5", result.render())

    p90_v4 = result.metric("p90 of RTT increase v4 (10% of paths exceed)").measured
    p90_v6 = result.metric("p90 of RTT increase v6 (10% of paths exceed)").measured
    assert 15.0 <= p90_v4 <= 300.0   # paper: 71.3 ms
    assert 15.0 <= p90_v6 <= 300.0   # paper: 79.6 ms
