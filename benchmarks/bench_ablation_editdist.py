"""Ablation: edit distance vs exact-match for change detection.

The paper uses edit distance between consecutive AS paths.  Exact match
detects the *same* change events (distance zero iff paths equal) but loses
the change-magnitude signal; this bench confirms the equivalence for
counting, quantifies the magnitude distribution only edit distance gives,
and compares the cost of both primitives.
"""

import numpy as np

from repro.core.editdist import edit_distance, paths_differ
from repro.core.routechange import change_events
from repro.harness.report import render_table
from repro.net.ip import IPVersion


def _consecutive_path_pairs(longterm, limit=4000):
    pairs = []
    for timeline in longterm.by_version(IPVersion.V4):
        for event in change_events(timeline):
            pairs.append((event.old_path, event.new_path))
            if len(pairs) >= limit:
                return pairs
    return pairs


def test_change_counting_equivalence(benchmark, longterm, emit):
    pairs = _consecutive_path_pairs(longterm)
    assert pairs, "expected some route changes in the default scenario"
    distances = benchmark.pedantic(
        lambda: [edit_distance(a, b) for a, b in pairs], rounds=1, iterations=1
    )
    exact = [paths_differ(a, b) for a, b in pairs]
    # Every change event has non-zero distance and differs exactly.
    assert all(distance >= 1 for distance in distances)
    assert all(exact)

    histogram = np.bincount(np.minimum(distances, 5))
    rows = [(f"distance {d}" if d < 5 else "distance >=5", int(count))
            for d, count in enumerate(histogram) if count]
    emit(
        "ablation_editdist",
        "change-magnitude distribution (only edit distance provides this):\n"
        + render_table(("edit distance", "changes"), rows),
    )
    # Most routing changes swap few ASes (single-hop reroutes dominate).
    assert histogram[1:3].sum() >= 0.4 * len(distances)


def test_edit_distance_cost(benchmark, longterm):
    pairs = _consecutive_path_pairs(longterm, limit=800)

    def run():
        return sum(edit_distance(a, b) for a, b in pairs)

    total = benchmark(run)
    assert total >= len(pairs)
