"""Perf guard: fail CI when the pipeline regresses past its baseline.

Compares a freshly produced ``BENCH_pipeline.json``-style summary (the
*candidate*) against the committed one (the *baseline*).  The guarded
number is the serial ``longterm-build`` stage -- the hot path the
columnar record plane vectorizes -- which must not exceed
``--factor`` (default 2.0) times the baseline.  A generous factor
absorbs runner-to-runner noise while still catching an accidental
return to per-round Python loops, which is an order-of-magnitude cliff,
not a percentage.

Two further guards hold the streaming engine to what the columnar
record plane achieved: the stream-vs-serial wall ratio must stay under
``--stream-wall-factor`` (default 1.3x -- stream mode must not fall
back to paying multiples of serial time), and stream peak RSS must stay
under ``--stream-rss-bound`` (default 0.25) times serial peak RSS --
the bounded-memory property that justifies the engine's existence.

Two service guards (schema 4 summaries; skipped when either side lacks
the ``service`` section) hold the campaign service's scale proof: the
mesh ingest rate must stay above ``1 / --service-rate-factor`` (default
2.0) times the baseline's when both ran the same mesh size, and service
peak RSS must stay under ``--service-rss-bound`` (default 1.0) times
serial peak RSS -- the O(1)-state property that lets the million-pair
mesh stream at bounded memory.

One fault-plane guard (schema 5 summaries; skipped when the candidate
lacks the ``faults`` section): the supervised zero-fault overhead
fraction -- the recovery machinery's price when nothing goes wrong,
measured back-to-back against an unsupervised run of the same mesh --
must stay under ``--faults-overhead-bound`` (default 0.05)::

    PYTHONPATH=src python benchmarks/perf_guard.py \
        --baseline BENCH_pipeline.json --candidate /tmp/bench_new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

MIN_SCHEMA = 2


def _load_summary(path: Path, label: str) -> dict:
    """Parse one summary file, validating the parts the guard reads."""
    try:
        summary = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"perf-guard: cannot read {label} {path}: {exc}")
    if not isinstance(summary, dict) or summary.get("benchmark") != "pipeline":
        raise SystemExit(f"perf-guard: {label} {path} is not a pipeline summary")
    if summary.get("schema", 0) < MIN_SCHEMA:
        raise SystemExit(
            f"perf-guard: {label} {path} schema {summary.get('schema')!r} "
            f"predates {MIN_SCHEMA}"
        )
    return summary


def _serial_longterm_build(summary: dict, label: str) -> float:
    stages = summary.get("phases", {}).get("serial", {}).get("stage_seconds", {})
    seconds = stages.get("longterm-build")
    if not isinstance(seconds, (int, float)) or seconds <= 0:
        raise SystemExit(
            f"perf-guard: {label} has no serial longterm-build timing"
        )
    return float(seconds)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed BENCH_pipeline.json")
    parser.add_argument("--candidate", required=True, type=Path,
                        help="summary produced by this run")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="failure threshold: candidate may take at most "
                             "FACTOR x baseline (default: 2.0)")
    parser.add_argument("--stream-wall-factor", type=float, default=1.3,
                        help="failure threshold: stream wall may take at most "
                             "this multiple of serial wall (default: 1.3)")
    parser.add_argument("--stream-rss-bound", type=float, default=0.25,
                        help="failure threshold: stream peak RSS may be at "
                             "most this fraction of serial peak RSS "
                             "(default: 0.25)")
    parser.add_argument("--service-rate-factor", type=float, default=2.0,
                        help="failure threshold: service ingest rate may be "
                             "at worst baseline / FACTOR (default: 2.0)")
    parser.add_argument("--service-rss-bound", type=float, default=1.0,
                        help="failure threshold: service peak RSS may be at "
                             "most this fraction of serial peak RSS "
                             "(default: 1.0)")
    parser.add_argument("--faults-overhead-bound", type=float, default=0.05,
                        help="failure threshold: supervised zero-fault "
                             "ingest may cost at most this fraction of the "
                             "unsupervised rate (default: 0.05)")
    args = parser.parse_args(argv)

    baseline = _load_summary(args.baseline, "baseline")
    candidate = _load_summary(args.candidate, "candidate")
    if baseline.get("scenario") != candidate.get("scenario"):
        raise SystemExit(
            f"perf-guard: scenario mismatch "
            f"(baseline {baseline.get('scenario')!r}, "
            f"candidate {candidate.get('scenario')!r})"
        )

    base_build = _serial_longterm_build(baseline, "baseline")
    cand_build = _serial_longterm_build(candidate, "candidate")
    limit = args.factor * base_build
    ratio = cand_build / base_build
    print(f"serial longterm-build: baseline {base_build:.3f}s, "
          f"candidate {cand_build:.3f}s ({ratio:.2f}x, limit {args.factor}x)")

    failures = []
    if cand_build > limit:
        failures.append(
            f"serial longterm-build {cand_build:.3f}s exceeds "
            f"{args.factor}x baseline ({limit:.3f}s)"
        )

    phases = candidate.get("phases", {})
    serial_wall = phases.get("serial", {}).get("wall_seconds")
    stream_wall = phases.get("stream", {}).get("wall_seconds")
    if serial_wall and stream_wall:
        wall_ratio = stream_wall / serial_wall
        print(f"stream wall vs serial wall: {stream_wall:.2f}s / "
              f"{serial_wall:.2f}s = {wall_ratio:.2f}x "
              f"(limit {args.stream_wall_factor}x)")
        if wall_ratio > args.stream_wall_factor:
            failures.append(
                f"stream wall {wall_ratio:.2f}x serial exceeds "
                f"{args.stream_wall_factor}x"
            )

    rss_ratio = candidate.get("memory", {}).get("stream_vs_serial_rss")
    if isinstance(rss_ratio, (int, float)) and rss_ratio > 0:
        print(f"stream peak RSS vs serial peak RSS: {rss_ratio:.3f} "
              f"(bound {args.stream_rss_bound})")
        if rss_ratio > args.stream_rss_bound:
            failures.append(
                f"stream RSS ratio {rss_ratio:.3f} exceeds bound "
                f"{args.stream_rss_bound}"
            )

    base_service = baseline.get("service")
    cand_service = candidate.get("service")
    if (
        isinstance(base_service, dict)
        and isinstance(cand_service, dict)
        and base_service.get("mesh_pairs") == cand_service.get("mesh_pairs")
    ):
        base_rate = base_service.get("ingest_rate_per_s")
        cand_rate = cand_service.get("ingest_rate_per_s")
        if base_rate and cand_rate:
            floor = base_rate / args.service_rate_factor
            print(f"service ingest rate: baseline {base_rate:,.0f}/s, "
                  f"candidate {cand_rate:,.0f}/s "
                  f"(floor {floor:,.0f}/s at 1/{args.service_rate_factor}x)")
            if cand_rate < floor:
                failures.append(
                    f"service ingest rate {cand_rate:,.0f}/s below "
                    f"1/{args.service_rate_factor}x baseline ({floor:,.0f}/s)"
                )

    service_rss = candidate.get("memory", {}).get("service_vs_serial_rss")
    if isinstance(service_rss, (int, float)) and service_rss > 0:
        print(f"service peak RSS vs serial peak RSS: {service_rss:.3f} "
              f"(bound {args.service_rss_bound})")
        if service_rss > args.service_rss_bound:
            failures.append(
                f"service RSS ratio {service_rss:.3f} exceeds bound "
                f"{args.service_rss_bound}"
            )

    cand_faults = candidate.get("faults")
    if isinstance(cand_faults, dict):
        overhead = cand_faults.get("overhead_fraction")
        if isinstance(overhead, (int, float)):
            print(f"faults supervision overhead: {overhead:.1%} "
                  f"(bound {args.faults_overhead_bound:.1%})")
            if overhead > args.faults_overhead_bound:
                failures.append(
                    f"supervision overhead {overhead:.1%} exceeds bound "
                    f"{args.faults_overhead_bound:.1%}"
                )

    if failures:
        for failure in failures:
            print(f"perf-guard: FAIL -- {failure}")
        return 1
    print("perf-guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
