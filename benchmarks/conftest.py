"""Shared benchmark fixtures: scenario datasets built once per session.

Benches use the ``default`` scenario (30 clusters, the paper's full 485-day
window) for the long-term analyses and the ``large`` congestion-rich
scenario for the link-classification studies, mirroring how the paper's
Section 5.2/5.3 campaign deliberately chased congested pairs.

Each bench writes its rendered report (the paper's rows/series) to
``benchmarks/output/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run regenerates every table and figure as text.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.scenarios import (
    scenario_longterm,
    scenario_ping,
    scenario_platform,
    scenario_traces,
)

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def platform():
    return scenario_platform("default")


@pytest.fixture(scope="session")
def longterm():
    return scenario_longterm("default")


@pytest.fixture(scope="session")
def pings():
    return scenario_ping("default")


@pytest.fixture(scope="session")
def traces():
    return scenario_traces("default")


@pytest.fixture(scope="session")
def rich_platform():
    return scenario_platform("large")


@pytest.fixture(scope="session")
def rich_traces():
    return scenario_traces("large")


@pytest.fixture(scope="session")
def emit():
    """Writer for rendered experiment reports."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
