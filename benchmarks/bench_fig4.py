"""Figure 4: AS-path lifetime vs increase in baseline (10th pct) RTT.

Paper headlines: sub-optimal paths with large RTT increases are
short-lived (top-left corner of the heatmap); 10% of paths suffer at least
48.3 ms (v4) / 59 ms (v6) extra baseline RTT; 20% at least ~25 ms.
"""

import numpy as np

from repro.harness.experiments import experiment_fig4


def test_fig4(benchmark, longterm, emit):
    result = benchmark.pedantic(
        experiment_fig4, args=(longterm,), rounds=1, iterations=1
    )
    emit("fig4", result.render())

    p90_v4 = result.metric("p90 of RTT increase v4 (10% of paths exceed)").measured
    p80_v4 = result.metric("p80 of RTT increase v4 (20% of paths exceed)").measured
    short_share = result.metric("short-lived share of worst-decile paths v4").measured

    assert 15.0 <= p90_v4 <= 250.0   # paper: 48.3 ms
    assert p80_v4 <= p90_v4
    # The paper's central qualitative claim: the worst paths skew short-lived.
    assert np.isnan(short_share) or short_share >= 50.0
