"""Section 5.1: is consistent congestion the norm in the core?  (No.)

Paper: <9.5% (v4) / <4% (v6) of server pairs see >10 ms of p95-p5 RTT
variation over the week; only 2% / 0.6% combine that with a strong diurnal
FFT signature.  The claim under test is the *minority* structure, not the
exact percentages.
"""

from repro.harness.experiments import experiment_congestion_norm


def test_congestion_norm(benchmark, pings, emit):
    result = benchmark.pedantic(
        experiment_congestion_norm, args=(pings,), rounds=1, iterations=1
    )
    emit("congestion_norm", result.render())

    spread_v4 = result.metric("pairs with >10ms p95-p5 spread v4").measured
    congested_v4 = result.metric("pairs with strong diurnal + spread v4").measured
    congested_v6 = result.metric("pairs with strong diurnal + spread v6").measured

    assert congested_v4 <= spread_v4      # the FFT gate only filters
    assert congested_v4 <= 10.0           # paper: 2% -- a small minority
    assert congested_v6 <= 10.0           # paper: 0.6%
    assert spread_v4 <= 30.0              # paper: 9.5%
