"""Ablation: the FFT power-ratio threshold (the paper's 0.3).

Sweeps the threshold and scores detection against the simulator's ground
truth (a pair is truly congested when its primary path crosses a segment
with an active congestion episode during the ping week).  The paper chose
0.3 "based on empirical evidence"; the sweep shows the precision/recall
trade-off that choice sits on.
"""

import numpy as np

from repro.core.congestion import CongestionDetector
from repro.harness.report import render_table


def _ground_truth(platform, pings):
    servers = {s.server_id: s for s in platform.measurement_servers()}
    week_hours = pings.grid.end_hour
    active_keys = {
        key
        for key in platform.congestion.congested_keys()
        if any(
            event.start_hour < week_hours and event.end_hour > 0
            for event in platform.congestion.events[key]
        )
    }
    truth = {}
    for (src_id, dst_id, version), _timeline in pings.timelines.items():
        realization = platform.realization(
            servers[src_id], servers[dst_id], version, 0
        )
        truth[(src_id, dst_id, version)] = bool(
            realization and set(realization.segment_keys) & active_keys
        )
    return truth


def test_fft_threshold_sweep(benchmark, platform, pings, emit):
    truth = _ground_truth(platform, pings)

    def sweep():
        rows = []
        for threshold in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6):
            detector = CongestionDetector(power_ratio_threshold=threshold)
            tp = fp = fn = 0
            for key, timeline in pings.timelines.items():
                verdict = detector.assess(timeline)
                flagged = verdict.congested
                if flagged and truth[key]:
                    tp += 1
                elif flagged:
                    fp += 1
                elif truth[key]:
                    fn += 1
            precision = tp / (tp + fp) if tp + fp else float("nan")
            recall = tp / (tp + fn) if tp + fn else float("nan")
            rows.append((threshold, tp, fp, fn,
                         f"{precision:.2f}", f"{recall:.2f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_fft",
        "FFT power-ratio threshold sweep (paper uses 0.3):\n"
        + render_table(("threshold", "tp", "fp", "fn", "precision", "recall"), rows),
    )

    by_threshold = {row[0]: row for row in rows}
    paper_row = by_threshold[0.3]
    precision_at_paper = float(paper_row[4])
    # At the paper's threshold the detector should be precise: almost
    # everything it flags is really congested.
    assert np.isnan(precision_at_paper) or precision_at_paper >= 0.7
    # Recall decreases in the threshold (monotone gate).
    tps = [row[1] for row in rows]
    assert all(a >= b for a, b in zip(tps, tps[1:]))
