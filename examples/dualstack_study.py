#!/usr/bin/env python3
"""Dual-stack study (the paper's Section 6) on a scaled scenario.

Compares IPv4 and IPv6 RTTs between dual-stack server pairs (Figure 10a),
computes RTT inflation over the speed-of-light bound (Figure 10b), and
turns the comparison into the operational recommendation the paper
motivates: per destination, which protocol should a dual-stack deployment
prefer, and how much does it save?

Run::

    python examples/dualstack_study.py [scenario]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import scenario_longterm, scenario_platform
from repro.core.dualstack import paired_rtt_differences
from repro.harness.experiments import experiment_fig10a, experiment_fig10b


def main(scenario: str = "small") -> None:
    print(f"building the long-term dataset for the {scenario!r} scenario ...")
    platform = scenario_platform(scenario)
    dataset = scenario_longterm(scenario)

    for experiment in (experiment_fig10a(dataset), experiment_fig10b(dataset)):
        print(experiment.render())
        print()

    # Operational view: a protocol-selection table for the worst pairs.
    comparison = paired_rtt_differences(dataset)
    ranked = sorted(
        comparison.per_pair_median.items(), key=lambda item: -abs(item[1])
    )
    print("largest protocol-selection savings (median RTTv4 - RTTv6 per pair):")
    print(f"{'pair':>12}  {'diff':>9}  recommendation")
    shown = 0
    for (src_id, dst_id), diff in ranked:
        if abs(diff) < 10.0:
            break
        src = dataset.servers.get(src_id)
        dst = dataset.servers.get(dst_id)
        if src is None or dst is None:
            continue
        protocol = "IPv6" if diff > 0 else "IPv4"
        print(f"{src_id:>5} ->{dst_id:>5}  {diff:>7.1f}ms  prefer {protocol} "
              f"({src.city.city} -> {dst.city.city})")
        shown += 1
        if shown >= 10:
            break
    if shown == 0:
        print("  (no pair saves 10 ms or more by switching protocols)")

    savings = np.array([abs(d) for d in comparison.per_pair_median.values() if abs(d) >= 10.0])
    if savings.size:
        print(f"\npairs saving >=10ms by protocol selection: {savings.size} "
              f"(median saving {np.median(savings):.1f} ms, max {savings.max():.1f} ms)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
