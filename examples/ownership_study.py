#!/usr/bin/env python3
"""Router-ownership study: the six heuristics of the paper's Section 5.3.

Runs the ownership inference over every measured path in a scenario,
validates the resolved owners against the simulator's ground truth (which
the paper could not do), shows a worked example of the hard case --
provider-addressed customer interfaces -- and plots the RTT timeline of the
pair with the most routing changes for flavor.

Run::

    python examples/ownership_study.py [scenario]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro import scenario_longterm, scenario_platform
from repro.core.ownership import HopView, infer_ownership
from repro.core.routechange import analyze_timeline
from repro.harness.curves import plot_timeline
from repro.net.ip import IPVersion


def main(scenario: str = "small") -> None:
    platform = scenario_platform(scenario)

    # Build the inference corpus: every measured path, both protocols.
    paths = []
    for src, dst in platform.server_pairs():
        for version in (IPVersion.V4, IPVersion.V6):
            realization = platform.realization(src, dst, version, 0)
            if realization is None:
                continue
            paths.append(
                [HopView(hop.address, hop.mapped_asn) for hop in realization.hops]
            )
    inference = infer_ownership(paths, platform.graph.relationships, passes=3)

    seen = {hop.address for path in paths for hop in path}
    resolved = checked = correct = 0
    heuristic_counts: Counter = Counter()
    interesting = None
    for address in sorted(seen, key=lambda a: (int(a.version), a.value)):
        owner = inference.owner(address)
        if owner is None:
            continue
        resolved += 1
        for (asn, heuristic), count in inference.labels.get(address, {}).items():
            heuristic_counts[heuristic] += count
        truth = platform.topology.interface_owner(address)
        if truth is None:
            continue  # server address
        checked += 1
        if owner == truth:
            correct += 1
        # The paper's hard case: address announced by one AS, router owned
        # by another (the customer heuristic's bread and butter).
        mapped = platform.plan.origin(address)
        if interesting is None and mapped is not None and mapped != truth:
            interesting = (address, mapped, truth, owner)

    print(f"interfaces observed: {len(seen)}; resolved: {resolved} "
          f"({100 * resolved / len(seen):.0f}%)")
    print(f"accuracy vs ground truth: {correct}/{checked} "
          f"({100 * correct / max(1, checked):.1f}%)")
    print("labels applied by heuristic:")
    for heuristic, count in heuristic_counts.most_common():
        print(f"  {heuristic:<10} {count}")
    if interesting:
        address, mapped, truth, owner = interesting
        print(f"\nworked hard case: {address}")
        print(f"  BGP origin of the address:   AS{mapped}")
        print(f"  ground-truth router owner:   AS{truth}")
        print(f"  heuristics resolved it to:   AS{owner} "
              f"({'correct' if owner == truth else 'WRONG'})")

    # Flavor: the flappiest timeline, drawn as text.
    print("\nflappiest pair's RTT timeline:")
    dataset = scenario_longterm(scenario)
    flappiest = max(
        dataset.by_version(IPVersion.V4),
        key=lambda timeline: analyze_timeline(timeline).changes,
    )
    src = dataset.servers[flappiest.src_server_id]
    dst = dataset.servers[flappiest.dst_server_id]
    print(plot_timeline(flappiest, title=f"{src.city} -> {dst.city} (IPv4)"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
