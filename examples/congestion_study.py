#!/usr/bin/env python3
"""Congestion study (the paper's Section 5) on a scaled scenario.

Runs the full pipeline: a week of 15-minute pings over every server pair,
the FFT diurnal detector to flag consistently congested pairs, a follow-up
30-minute traceroute campaign over the flagged pairs, localization of the
congested segment via Pearson correlation, router-ownership inference with
the six heuristics, and classification of the congested links (internal vs
interconnection, p2p vs c2p) with their overhead estimates.

Run::

    python examples/congestion_study.py [scenario]

(``small`` is quick; ``large`` gives the richest link statistics).
"""

from __future__ import annotations

import sys

from repro import scenario_ping, scenario_platform, scenario_traces
from repro.core.localization import localize_congestion
from repro.core.overhead import congestion_overhead
from repro.harness.experiments import (
    experiment_congestion_norm,
    experiment_fig9,
    experiment_link_classification,
    experiment_localization,
)


def main(scenario: str = "small") -> None:
    print(f"building the short-term campaigns for the {scenario!r} scenario ...")
    platform = scenario_platform(scenario)
    pings = scenario_ping(scenario)
    traces = scenario_traces(scenario)
    print(
        f"pings: {len(pings.timelines)} timelines; "
        f"follow-up traceroutes: {len(traces.entries)} pair/protocol entries\n"
    )

    for experiment in (
        experiment_congestion_norm(pings),
        experiment_localization(traces, platform),
        experiment_link_classification(traces, platform),
        experiment_fig9(traces, platform),
    ):
        print(experiment.render())
        print()

    # Show one located congestion event end to end.
    for entry in traces.entries.values():
        if not entry.static_path:
            continue
        result = localize_congestion(entry)
        if not result.located:
            continue
        near, far = result.link
        overhead = congestion_overhead(entry.times_hours, entry.rtt_ms)
        print("example located congestion event:")
        print(f"  pair: server {entry.src_server_id} -> {entry.dst_server_id} "
              f"(IPv{int(entry.version)})")
        print(f"  congested link: {near} -> {far} (hop {result.congested_hop})")
        correlations = ", ".join(
            "nan" if c != c else f"{c:.2f}" for c in result.correlations
        )
        print(f"  per-segment correlations with the end-to-end series: {correlations}")
        if overhead is not None:
            print(f"  estimated busy-hour overhead: {overhead:.1f} ms")
        break


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
