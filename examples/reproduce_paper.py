#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Drives :func:`repro.harness.experiments.run_all_experiments` over a chosen
scenario and writes the paper-vs-measured reports to stdout and to
``experiments_output/`` (one text file per experiment).  This is the script
EXPERIMENTS.md is refreshed from.

Run::

    python examples/reproduce_paper.py [scenario] [output_dir]
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro import scenario_longterm, scenario_ping, scenario_platform, scenario_traces
from repro.harness.experiments import run_all_experiments


def main(scenario: str = "default", output_dir: str = "experiments_output") -> None:
    started = time.time()
    print(f"building scenario {scenario!r} (platform + all campaigns) ...")
    platform = scenario_platform(scenario)
    longterm = scenario_longterm(scenario)
    pings = scenario_ping(scenario)
    traces = scenario_traces(scenario)
    print(f"  built in {time.time() - started:.0f}s\n")

    results = run_all_experiments(platform, longterm, pings, traces)

    out = pathlib.Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    for result in results:
        text = result.render()
        print(text)
        print()
        (out / f"{result.experiment_id}.txt").write_text(text + "\n")
    print(f"reports written to {out}/ ({len(results)} experiments, "
          f"total {time.time() - started:.0f}s)")


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "default",
        sys.argv[2] if len(sys.argv) > 2 else "experiments_output",
    )
