#!/usr/bin/env python3
"""Quickstart: build a small synthetic Internet and run measurements on it.

Builds a 12-cluster CDN deployment over a generated AS topology, runs a
single traceroute (printing the hop-by-hop record), samples a week of pings
between one server pair, and prints the pair's routing epochs -- the basic
moves everything else in the library composes.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MeasurementPlatform, PlatformConfig
from repro.measurement.ping import ping_series
from repro.net.ip import IPVersion


def main() -> None:
    # One seed controls the whole world: topology, addresses, dynamics.
    platform = MeasurementPlatform(PlatformConfig(seed=7, cluster_count=12))
    print(f"topology: {len(platform.graph.ases)} ASes, "
          f"{len(platform.graph.edge_media)} edges, "
          f"{len(platform.topology.routers)} routers")
    print(f"CDN: {len(platform.cdn.clusters)} clusters, "
          f"{len(platform.cdn.servers)} servers\n")

    src, dst = platform.server_pairs()[0]
    print(f"measuring {src.city} (AS{src.asn}) -> {dst.city} (AS{dst.asn})\n")

    # A single traceroute, as the CDN's measurement server would run it.
    path = platform.realization(src, dst, IPVersion.V4, candidate_index=0)
    record = platform.engine.trace(path, time_hours=10.0, rng=platform.rng("demo"))
    print(record.render())
    print()

    # A week of pings every 15 minutes over the same path.
    times = np.arange(0.0, 7 * 24.0, 0.25)
    rtts = ping_series(
        path,
        times,
        platform.rng("demo-pings"),
        delay_model=platform.delay_model,
        congestion=platform.congestion,
    )
    finite = rtts[np.isfinite(rtts)]
    print(f"one week of pings: n={finite.size}, "
          f"median={np.median(finite):.1f} ms, "
          f"p95-p5 spread={np.percentile(finite, 95) - np.percentile(finite, 5):.1f} ms")

    # The pair's AS-level routing timeline over the simulated study window.
    print("\nrouting epochs (start hour, end hour, candidate route):")
    for epoch in platform.epochs(src, dst, IPVersion.V4)[:8]:
        candidates = platform.candidates(src.asn, dst.asn, IPVersion.V4)
        path_text = (
            " -> ".join(f"AS{asn}" for asn in candidates[epoch.candidate_index].path)
            if epoch.candidate_index >= 0
            else "(unreachable)"
        )
        print(f"  [{epoch.start_hour:9.1f}, {epoch.end_hour:9.1f})  {path_text}")


if __name__ == "__main__":
    main()
