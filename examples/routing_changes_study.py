#!/usr/bin/env python3
"""Routing-change study (the paper's Section 4) on a scaled scenario.

Builds the long-term full-mesh traceroute dataset (every 3 hours over both
protocols) and reproduces the routing analyses: unique AS paths per trace
timeline, popular-path prevalence, change counts, and the lifetime versus
RTT-increase heatmap that shows bad routes are short-lived.

Run::

    python examples/routing_changes_study.py [scenario]

where ``scenario`` is ``small`` (default here, fast), ``default`` or
``large``.
"""

from __future__ import annotations

import sys

from repro import scenario_longterm, scenario_platform
from repro.harness.experiments import (
    experiment_fig2,
    experiment_fig3,
    experiment_fig4,
    experiment_fig6,
)


def main(scenario: str = "small") -> None:
    print(f"building the long-term dataset for the {scenario!r} scenario ...")
    platform = scenario_platform(scenario)
    dataset = scenario_longterm(scenario)
    print(
        f"dataset: {len(dataset.timelines)} trace timelines over "
        f"{dataset.grid.rounds} rounds "
        f"({dataset.grid.duration_hours / 24:.0f} days at "
        f"{dataset.grid.period_hours:g}h cadence)\n"
    )

    for experiment in (
        experiment_fig2(dataset),
        experiment_fig3(dataset),
        experiment_fig4(dataset),
        experiment_fig6(dataset),
    ):
        print(experiment.render())
        print()

    # A concrete takeaway the paper's abstract leads with: how much do
    # routing changes cost when they do hurt?
    del platform  # the experiments above already consumed everything needed


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
